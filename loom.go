// Package loom is a query-aware streaming graph partitioner, a faithful
// from-scratch implementation of
//
//	H. Firth, P. Missier, J. Aiston.
//	"Loom: Query-aware Partitioning of Online Graphs", EDBT 2018.
//
// Loom consumes a stream of labelled edges (an online graph) and
// continuously assigns vertices to k partitions, optimising placement for a
// workload Q of sub-graph pattern-matching queries with known relative
// frequencies. It discovers the traversal patterns ("motifs") that the
// workload visits most, detects sub-graphs matching those motifs as they
// form in the stream, and places each matching cluster inside a single
// partition — cutting the inter-partition traversals (ipt) that dominate
// distributed query latency.
//
// # Quick start
//
//	wl := loom.NewWorkload("social")
//	wl.Add("friends-of-friends", loom.Path("person", "person", "person"), 0.7)
//	wl.Add("same-city", loom.Path("person", "city", "person"), 0.3)
//
//	p, err := loom.New(loom.Options{Partitions: 4, ExpectedVertices: 10000}, wl)
//	// mirror placements as they happen (e.g. into a query router):
//	p.OnPlace(func(ev loom.PlacementEvent) { router.Apply(ev) })
//	// stream edges in batches — any number of goroutines may feed:
//	err = p.AddBatch([]loom.StreamEdge{
//		{U: 1, LU: "person", V: 2, LV: "person"},
//		{U: 2, LU: "person", V: 7, LV: "city"},
//	})
//	// ...
//	p.Flush() // drain the window at end-of-stream
//	snap := p.Snapshot() // consistent view, readable without blocking ingest
//	part, ok := snap.PartitionOf(1)
//
// # Concurrency and migration from the per-edge API
//
// A Partitioner is safe for concurrent use: N producers may call AddBatch
// (or AddEdge) while other goroutines read placements. Batches are applied
// atomically, and a single-threaded AddBatch replay is bit-identical to the
// historical per-edge AddEdge path, so existing code keeps working
// unchanged: AddEdge remains (it delegates to AddEdgeE and panics on
// corrupt input, as it always did), while AddBatch/AddEdgeE return errors
// and Err exposes the first ingest error. Prefer AddBatch for throughput —
// it pays the ingest lock once per batch instead of once per edge — and
// Snapshot for reads that must not block (or be blocked by) ingest.
//
// The package also exposes the paper's baseline streaming partitioners
// (Hash, LDG, Fennel) behind the same interface via NewBaseline, the
// evaluation datasets via GenerateDataset/DatasetWorkload, and an ipt
// evaluator via Evaluate — everything needed to reproduce the paper's
// experiments (see cmd/loom-bench and EXPERIMENTS.md).
package loom

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"loom/internal/core"
	"loom/internal/dataset"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/pattern"
	"loom/internal/refine"
	"loom/internal/signature"
	"loom/internal/simulate"
	"loom/internal/tpstry"
	"loom/internal/wal"
	"loom/internal/workload"
)

// StreamEdge is one element of the input stream: an edge with the labels of
// both endpoints (labels travel with edges because a vertex may first
// appear inside one).
type StreamEdge struct {
	U  int64
	LU string
	V  int64
	LV string
}

// Options configures a Partitioner. Zero values take the paper's defaults.
type Options struct {
	// Partitions is k, the number of partitions (required).
	Partitions int
	// ExpectedVertices sizes the per-partition capacity C = ν·n/k
	// (required; streaming balance needs a capacity estimate, §4).
	ExpectedVertices int
	// ExpectedEdges is used by the Fennel baseline's α (optional; ignored
	// by Loom itself).
	ExpectedEdges int
	// WindowSize is the sliding window t in edges (default 10_000).
	WindowSize int
	// SupportThreshold is the motif threshold T (default 0.40).
	SupportThreshold float64
	// Alpha is equal opportunism's rationing aggression (default 2/3).
	Alpha float64
	// MaxImbalance is the bound b / Fennel's ν (default 1.1).
	MaxImbalance float64
	// SignaturePrime is the finite-field modulus p (default 251, §2.3).
	SignaturePrime uint32
	// Seed makes signature label values and any internal randomness
	// reproducible (default 1).
	Seed int64
	// Workers is the parallelism of batch ingest: AddBatch runs a
	// prepare pre-pass (edge conversion, vertex/label resolution, motif
	// gate) across this many goroutines before the sequential placement
	// core consumes the batch, and large eviction rounds scatter their
	// bids across the same pool. Placements are bit-identical for every
	// value — parallelism changes only throughput. 0 (the default) uses
	// GOMAXPROCS at construction time; 1 disables the pipeline and keeps
	// ingest on the exact single-threaded path. Only Loom partitioners
	// parallelise; baselines ignore the knob.
	Workers int
	// KeepGraph records every accepted edge so Evaluate can replay the
	// workload over the final partitioning (default true; disable for
	// large streams where only the assignment matters).
	DisableGraphRecording bool
	// SpillDir, when non-empty, bounds the recorded graph's memory at
	// very large scale by spilling frozen chunks of its compressed edge
	// log to files in this directory (written durably: temp file, fsync,
	// rename, directory fsync). Evaluate/Simulate read spilled chunks
	// back sequentially, one at a time. A failed spill degrades
	// gracefully — the chunk stays resident and is retried at the next
	// Checkpoint (or GraphCompact). Ignored when recording is disabled.
	SpillDir string

	// WALDir enables durability: every ingest call is appended to a
	// write-ahead segment log in this directory before it is applied, and
	// Checkpoint writes atomic full-state snapshots there. A durable
	// partitioner is constructed with Open (New rejects a non-empty
	// WALDir); see the package's "Durability & recovery" documentation.
	// Empty (the default) disables the WAL entirely.
	WALDir string
	// WALSync selects the fsync policy for the log (default WALSyncBatch).
	WALSync WALSyncPolicy
	// WALSegmentBytes rotates log segments at this size (default 4 MiB).
	WALSegmentBytes int
	// WALKeepCheckpoints retains this many checkpoints (default 2: the
	// latest plus one fallback in case the latest is corrupt).
	WALKeepCheckpoints int
	// WALFailure selects how ingest responds when the log itself fails —
	// a segment write or fsync error that survives WALAppendRetries
	// retries. FailStop (the default) makes the failing call error and
	// latches the sticky Err; DegradeToMemory trips a breaker instead:
	// placements keep flowing in memory while DurabilityLost reports what
	// the disk is guaranteed to hold, and a successful Checkpoint on a
	// recovered disk re-arms the log.
	WALFailure WALFailurePolicy
	// WALAppendRetries is how many times a failed log write or fsync is
	// retried (sleeping WALRetryBackoff, doubled per attempt, in between)
	// before WALFailure decides the outcome. 0 (the default) means 2
	// retries; negative disables retrying.
	WALAppendRetries int
	// WALRetryBackoff is the initial delay between log write retries,
	// doubling per attempt (default 10ms). Retries run under the ingest
	// lock: concurrent writers stall, lock-free reads do not.
	WALRetryBackoff time.Duration
}

// Pattern is a small labelled query graph.
type Pattern struct {
	g *graph.Graph
}

// Path returns the path pattern l1 − l2 − … − ln.
func Path(labels ...string) *Pattern {
	return &Pattern{g: pattern.Path(toLabels(labels)...)}
}

// Cycle returns the cycle pattern l1 − l2 − … − ln − l1.
func Cycle(labels ...string) *Pattern {
	return &Pattern{g: pattern.Cycle(toLabels(labels)...)}
}

// Star returns a star pattern with a centre label and one leaf per label.
func Star(centre string, leaves ...string) *Pattern {
	return &Pattern{g: pattern.Star(graph.Label(centre), toLabels(leaves)...)}
}

// NewPattern returns an empty pattern for incremental construction.
func NewPattern() *Pattern { return &Pattern{g: graph.New()} }

// AddEdge adds a labelled edge between pattern vertices u and v, creating
// them as needed. It returns the pattern for chaining and panics on label
// conflicts (patterns are built from literals; a conflict is a programming
// error).
func (p *Pattern) AddEdge(u int64, lu string, v int64, lv string) *Pattern {
	added, err := p.g.EnsureEdge(graph.VertexID(u), graph.Label(lu), graph.VertexID(v), graph.Label(lv))
	if err != nil {
		panic(fmt.Sprintf("loom: pattern edge %d-%d: %v", u, v, err))
	}
	if !added {
		panic(fmt.Sprintf("loom: duplicate pattern edge %d-%d", u, v))
	}
	return p
}

// Edges returns the number of edges in the pattern.
func (p *Pattern) Edges() int { return p.g.NumEdges() }

func toLabels(ss []string) []graph.Label {
	out := make([]graph.Label, len(ss))
	for i, s := range ss {
		out[i] = graph.Label(s)
	}
	return out
}

// Workload is a multiset of pattern queries with relative frequencies
// (§1.3).
type Workload struct {
	name    string
	queries []workload.Query
}

// NewWorkload returns an empty named workload.
func NewWorkload(name string) *Workload { return &Workload{name: name} }

// Add appends a query pattern with its relative frequency (any positive
// weight; Loom normalises internally). It returns the workload for
// chaining.
func (w *Workload) Add(name string, p *Pattern, freq float64) *Workload {
	w.queries = append(w.queries, workload.Query{Name: name, Pattern: p.g, Freq: freq})
	return w
}

// Len returns the number of queries.
func (w *Workload) Len() int { return len(w.queries) }

// QueryInfo describes one workload query for consumers that plan around
// the workload without executing it — e.g. a router deciding how far a
// scatter-gather pattern query can reach from its seed vertex.
type QueryInfo struct {
	Name string
	Freq float64
	// Edges is the number of edges in the query pattern.
	Edges int
	// Diameter is the longest shortest-path distance (in hops) between any
	// two pattern vertices: from whichever vertex a seed binds to, every
	// other match vertex is within Diameter hops.
	Diameter int
	// Labels are the distinct vertex labels the pattern mentions, sorted.
	Labels []string
}

// Queries describes the workload's queries (see QueryInfo). The returned
// slice is a fresh copy in Add order.
func (w *Workload) Queries() []QueryInfo {
	out := make([]QueryInfo, len(w.queries))
	for i, q := range w.queries {
		labelSet := map[string]bool{}
		for _, l := range q.Pattern.Labels() {
			labelSet[string(l)] = true
		}
		labels := make([]string, 0, len(labelSet))
		for l := range labelSet {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		out[i] = QueryInfo{
			Name:     q.Name,
			Freq:     q.Freq,
			Edges:    q.Pattern.NumEdges(),
			Diameter: patternDiameter(q.Pattern),
			Labels:   labels,
		}
	}
	return out
}

// patternDiameter is the diameter of a (small, connected) pattern graph:
// BFS from every vertex, take the largest eccentricity. Patterns are a
// handful of vertices, so the quadratic walk is irrelevant.
func patternDiameter(g *graph.Graph) int {
	verts := g.Vertices()
	diam := 0
	dist := make(map[graph.VertexID]int, len(verts))
	queue := make([]graph.VertexID, 0, len(verts))
	var ns []graph.VertexID
	for _, s := range verts {
		clear(dist)
		dist[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			ns = g.Neighbors(v, ns[:0])
			for _, n := range ns {
				if _, seen := dist[n]; !seen {
					dist[n] = dist[v] + 1
					if dist[n] > diam {
						diam = dist[n]
					}
					queue = append(queue, n)
				}
			}
		}
	}
	return diam
}

func (w *Workload) internal() workload.Workload {
	return workload.Workload{Name: w.name, Queries: w.queries}
}

// Stats mirrors the partitioner's processing counters.
type Stats struct {
	EdgesProcessed int
	ImmediateEdges int // bypassed the window (no single-edge motif)
	WindowedEdges  int // buffered in Ptemp
	Evictions      int
	WindowLen      int // edges currently buffered (Ptemp size)
}

// Partitioner is the public handle over a streaming partitioner: Loom
// itself or one of the baselines.
//
// A Partitioner is safe for concurrent use: ingest (AddBatch, AddEdge,
// Flush) serialises behind a single writer lock, so any number of producer
// goroutines can feed one partitioner, and reads (PartitionOf, Sizes,
// Snapshot, …) observe only batch-atomic states — never a half-applied
// eviction. Reads do not take the lock at all on the common path: every
// batch boundary publishes an immutable copy-on-write epoch of the
// assignment through an atomic pointer, so PartitionOf and Snapshot run
// lock-free against the last published epoch while producers keep
// ingesting. The underlying streamers remain single-threaded; this type is
// the concurrency boundary.
type Partitioner struct {
	name string
	opt  Options

	// view is the lock-free read surface: the latest published epoch (or
	// the refined assignment), swapped atomically at every batch boundary
	// with the write lock held. pending flags per-edge ingest (AddEdgeE)
	// that has not been published yet: while set, readers fall back to the
	// locked paths so they never miss their own writes. Both are read
	// without the lock.
	view    atomic.Pointer[readView]
	pending atomic.Bool

	// mu guards every field below: ingest and other mutations take the
	// write lock, reads the read lock. Placement-event handlers run while
	// the write lock is held (see OnPlace).
	mu       sync.RWMutex
	streamer partition.Streamer
	tr       *partition.Tracker // streamer's tracker (cheap reads, event hook)
	loom     *core.Loom         // non-nil only for algo == loom
	trie     *tpstry.Trie
	wl       *Workload
	// g is the recorded graph (nil when disabled). Its compressed edge log
	// doubles as the accepted-edge log: Evaluate/Simulate capture a
	// graph.Replay under the read lock — O(1), pinned slice headers plus
	// the log's chunk list — and replay it into a private graph with no
	// lock held, so evaluations never stall ingest.
	g *graph.Graph
	// refined, when non-nil, supersedes the streamer's assignment (set by
	// Refine).
	refined *partition.Assignment

	err      error // first ingest error (sticky; see Err)
	seq      uint64
	handlers []func(PlacementEvent)
	// evHooked records that the streamer-level event hooks are installed.
	// It is set by the first OnPlace and — crucially for recovery — by
	// restore when the checkpointed partitioner had subscribers: the hooks
	// must advance the event seq during replay even before any handler
	// re-subscribes, or post-recovery seqs would diverge from the
	// uninterrupted run's.
	evHooked bool

	// Durability (nil/zero without a WAL; see Open, Checkpoint, Close).
	wal       *wal.Log
	walClosed bool
	// Breaker state under WALFailure == DegradeToMemory: degraded means a
	// log failure exhausted its retries and ingest now runs memory-only;
	// duraErr is the first failure and duraLSN the watermark of the last
	// record the disk is guaranteed to hold (see DurabilityLost).
	degraded bool
	duraErr  error
	duraLSN  uint64
	// follower marks a read-only replica built by Follow: direct ingest is
	// refused; state advances only through Follower.Poll.
	follower  bool
	walEnc    wal.Enc  // record staging; starts with the 8-byte frame hole (walEncReset)
	walLabels []string // label-table scratch reused across batch records
	// baseQueries is the length of the construction-time workload; queries
	// beyond it arrived via AddQuery and are checkpointed as a replayable
	// tail (added) on top of the base workload fingerprint.
	baseQueries int
	added       []addedQuery
}

// addedQuery is one AddQuery call retained for checkpointing.
type addedQuery struct {
	name string
	pat  *Pattern
	freq float64
}

// readView is one published read surface: exactly one of epoch (the
// streamer's latest copy-on-write epoch) or refined (the immutable
// assignment installed by Refine) is non-nil. Both are immutable, so a
// single atomic load hands a reader a complete consistent view.
type readView struct {
	epoch   *partition.Epoch
	refined *partition.Assignment
}

// publishLocked publishes the current assignment state to the lock-free
// read surface; p.mu must be held for writing (every mutation path ends
// here, making batch boundaries the epochs' consistent points). Returns nil
// for streamers without a tracker (no shipped streamer lacks one).
func (p *Partitioner) publishLocked() *readView {
	var rv *readView
	switch {
	case p.refined != nil:
		if prev := p.view.Load(); prev != nil && prev.refined == p.refined {
			rv = prev
		} else {
			rv = &readView{refined: p.refined}
			p.view.Store(rv)
		}
	case p.tr != nil:
		e := p.tr.Publish()
		if prev := p.view.Load(); prev != nil && prev.epoch == e {
			rv = prev
		} else {
			rv = &readView{epoch: e}
			p.view.Store(rv)
		}
	}
	// Clear only after the view store: a reader that observes
	// pending == false is guaranteed to load a view at least as fresh as
	// every write that preceded this publish.
	p.pending.Store(false)
	return rv
}

// loadView returns the published read surface when it is current — no
// unpublished per-edge ingest — or nil, in which case the caller takes a
// locked fallback path.
func (p *Partitioner) loadView() *readView {
	if p.pending.Load() {
		return nil
	}
	return p.view.Load()
}

// tracked is the capability the public layer uses for cheap placement
// reads and event hooks; every shipped streamer exposes its tracker.
type tracked interface{ Tracker() *partition.Tracker }

func (o Options) normalise() (Options, error) {
	if o.Partitions < 1 {
		return o, fmt.Errorf("loom: Partitions must be >= 1, got %d", o.Partitions)
	}
	if o.ExpectedVertices < 1 {
		return o, fmt.Errorf("loom: ExpectedVertices must be >= 1, got %d", o.ExpectedVertices)
	}
	if o.WindowSize == 0 {
		o.WindowSize = 10_000
	}
	if o.SupportThreshold == 0 {
		o.SupportThreshold = 0.40
	}
	if o.Alpha == 0 {
		o.Alpha = 2.0 / 3.0
	}
	if o.MaxImbalance == 0 {
		o.MaxImbalance = partition.DefaultImbalance
	}
	if o.SignaturePrime == 0 {
		o.SignaturePrime = signature.DefaultP
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return o, fmt.Errorf("loom: Workers must be >= 1 (or 0 for GOMAXPROCS), got %d", o.Workers)
	}
	if o.WALSync < WALSyncBatch || o.WALSync > WALSyncNone {
		return o, fmt.Errorf("loom: unknown WALSync policy %d", o.WALSync)
	}
	if o.WALSegmentBytes == 0 {
		o.WALSegmentBytes = 4 << 20
	}
	if o.WALSegmentBytes < 1024 {
		return o, fmt.Errorf("loom: WALSegmentBytes must be >= 1024, got %d", o.WALSegmentBytes)
	}
	if o.WALKeepCheckpoints == 0 {
		o.WALKeepCheckpoints = 2
	}
	if o.WALKeepCheckpoints < 1 {
		return o, fmt.Errorf("loom: WALKeepCheckpoints must be >= 1, got %d", o.WALKeepCheckpoints)
	}
	if o.WALFailure < FailStop || o.WALFailure > DegradeToMemory {
		return o, fmt.Errorf("loom: unknown WALFailure policy %d", o.WALFailure)
	}
	if o.WALRetryBackoff == 0 {
		o.WALRetryBackoff = 10 * time.Millisecond
	}
	return o, nil
}

// New builds a Loom partitioner for the given workload. For a durable
// partitioner (Options.WALDir set), use Open instead — construction and
// recovery are the same operation there.
func New(opt Options, wl *Workload) (*Partitioner, error) {
	if opt.WALDir != "" {
		return nil, fmt.Errorf("loom: Options.WALDir is set; use loom.Open to construct (or recover) a durable partitioner")
	}
	opt, err := opt.normalise()
	if err != nil {
		return nil, err
	}
	return newLoom(opt, wl)
}

// newLoom is New after option validation, shared with Open (which builds
// the same fresh partitioner and then restores state into it).
func newLoom(opt Options, wl *Workload) (*Partitioner, error) {
	if wl == nil || wl.Len() == 0 {
		return nil, fmt.Errorf("loom: a non-empty workload is required (use NewBaseline for workload-agnostic partitioning)")
	}
	iwl := wl.internal()
	if err := iwl.Validate(); err != nil {
		return nil, err
	}
	scheme := signature.NewScheme(opt.SignaturePrime, opt.Seed)
	trie, err := iwl.BuildTrie(scheme)
	if err != nil {
		return nil, err
	}
	lm, err := core.New(core.Config{
		K:                opt.Partitions,
		Capacity:         partition.CapacityFor(opt.ExpectedVertices, opt.Partitions, opt.MaxImbalance),
		WindowSize:       opt.WindowSize,
		SupportThreshold: opt.SupportThreshold,
		Alpha:            opt.Alpha,
		MaxImbalance:     opt.MaxImbalance,
		Workers:          opt.Workers,
	}, trie)
	if err != nil {
		return nil, err
	}
	p := &Partitioner{
		name: "loom", streamer: lm, tr: lm.Tracker(), loom: lm,
		trie: trie, wl: wl, opt: opt, baseQueries: wl.Len(),
	}
	if p.g, err = newRecordedGraph(opt); err != nil {
		return nil, err
	}
	p.publishLocked() // seed the lock-free read surface (no sharing yet)
	return p, nil
}

// newRecordedGraph builds the recorded graph per opt — nil when recording
// is disabled — pre-sizing the duplicate-edge set from ExpectedEdges and
// configuring edge-log spilling when SpillDir is set.
func newRecordedGraph(opt Options) (*graph.Graph, error) {
	if opt.DisableGraphRecording {
		return nil, nil
	}
	g := graph.New()
	g.Reserve(opt.ExpectedEdges)
	if opt.SpillDir != "" {
		if err := g.SpillTo(wal.OS(), opt.SpillDir); err != nil {
			return nil, fmt.Errorf("loom: %w", err)
		}
	}
	return g, nil
}

// NewBaseline builds one of the paper's baseline partitioners — "hash",
// "ldg" or "fennel" — behind the same interface, with an optional workload
// used only by Evaluate.
func NewBaseline(algo string, opt Options, wl *Workload) (*Partitioner, error) {
	if opt.WALDir != "" {
		return nil, fmt.Errorf("loom: the WAL is only supported for Loom partitioners (use loom.Open)")
	}
	opt, err := opt.normalise()
	if err != nil {
		return nil, err
	}
	capC := partition.CapacityFor(opt.ExpectedVertices, opt.Partitions, opt.MaxImbalance)
	var s partition.Streamer
	switch algo {
	case "hash":
		s = partition.NewHash(opt.Partitions, capC)
	case "ldg":
		s = partition.NewLDG(opt.Partitions, capC)
	case "fennel":
		m := opt.ExpectedEdges
		if m == 0 {
			m = 2 * opt.ExpectedVertices
		}
		s = partition.NewFennel(opt.Partitions, opt.ExpectedVertices, m)
	default:
		return nil, fmt.Errorf("loom: unknown baseline %q (want hash, ldg or fennel)", algo)
	}
	p := &Partitioner{name: algo, streamer: s, wl: wl, opt: opt}
	if tk, ok := s.(tracked); ok {
		p.tr = tk.Tracker()
	}
	if p.g, err = newRecordedGraph(opt); err != nil {
		return nil, err
	}
	p.publishLocked() // seed the lock-free read surface (no sharing yet)
	return p, nil
}

// Name returns the algorithm name ("loom", "hash", "ldg", "fennel").
func (p *Partitioner) Name() string { return p.name }

// AddBatch feeds a batch of stream edges in order. Batches are applied
// atomically with respect to every other ingest call and read: N producer
// goroutines can call AddBatch concurrently, and a snapshot or placement
// read never observes a half-applied batch. Self-loops and duplicates are
// tolerated (dropped); an edge that conflicts with an already-recorded
// vertex label (corrupt input) is dropped, recorded as the sticky Err, and
// reported in the returned error — the rest of the batch is still
// processed. A single-threaded AddBatch replay yields placements
// bit-identical to the per-edge AddEdge path.
//
// AddBatch is the preferred ingest path: the ingest lock (and the public
// per-call overhead around it) is paid once per batch rather than once per
// edge — see BENCH_pr3_api.json for the measured per-edge saving. With
// Options.Workers > 1, Loom partitioners additionally run the batch
// through a stage-parallel pipeline (parallel prepare pre-pass, sequential
// placement core) whose placements are bit-identical to the single-threaded
// path; see the Workers option.
func (p *Partitioner) AddBatch(batch []StreamEdge) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.publishLocked() // batch boundary: refresh the lock-free epoch
	if err := p.walAppendBatch(batch); err != nil {
		return err
	}
	return p.applyBatchLocked(batch)
}

// applyBatchLocked is AddBatch's application half, shared with WAL replay
// (p.mu held for writing; the batch is already logged or being replayed
// from the log). Corrupt edges are dropped with the sticky-error
// semantics; because those error paths are deterministic, replaying a
// logged batch reproduces them exactly.
func (p *Partitioner) applyBatchLocked(batch []StreamEdge) error {
	if p.loom != nil && p.opt.Workers > 1 {
		return p.addBatchParallel(batch)
	}
	var firstErr error
	// Edges dispatch to the streamer one at a time rather than through
	// Streamer.ProcessEdges: the public edge type must be converted
	// per-element anyway, and staging the conversion in a []graph.StreamEdge
	// buffer just to hand it over in one call was measured slower (one
	// extra copy per edge) than dispatching as we convert. ProcessEdges
	// earns its keep for callers that already hold internal stream slices
	// (cmd tools, the bench harness).
	for i := range batch {
		e := &batch[i]
		se := graph.StreamEdge{
			U: graph.VertexID(e.U), LU: graph.Label(e.LU),
			V: graph.VertexID(e.V), LV: graph.Label(e.LV),
		}
		if p.g != nil {
			if _, err := p.g.EnsureEdge(se.U, se.LU, se.V, se.LV); err != nil {
				err = fmt.Errorf("loom: %w", err)
				if firstErr == nil {
					firstErr = err
				}
				if p.err == nil {
					p.err = err
				}
				continue
			}
		}
		p.streamer.ProcessEdge(se)
	}
	return firstErr
}

// addBatchParallel feeds a batch through the Loom core's stage-parallel
// pipeline (p.mu held for writing). The pipeline pulls edges via the at
// callback — conversion from the public edge type happens inside the
// parallel prepare pre-pass, off the sequential path — and, when graph
// recording is on, validates the batch through the same serial EnsureEdge
// walk as the per-edge path (overlapped with the pre-pass), dropping
// corrupt edges with the same sticky-error semantics.
func (p *Partitioner) addBatchParallel(batch []StreamEdge) error {
	var firstErr error
	at := func(i int) graph.StreamEdge {
		e := &batch[i]
		return graph.StreamEdge{
			U: graph.VertexID(e.U), LU: graph.Label(e.LU),
			V: graph.VertexID(e.V), LV: graph.Label(e.LV),
		}
	}
	var validate func(reject func(int))
	if p.g != nil {
		validate = func(reject func(int)) {
			for i := range batch {
				e := &batch[i]
				se := graph.StreamEdge{
					U: graph.VertexID(e.U), LU: graph.Label(e.LU),
					V: graph.VertexID(e.V), LV: graph.Label(e.LV),
				}
				if _, err := p.g.EnsureEdge(se.U, se.LU, se.V, se.LV); err != nil {
					err = fmt.Errorf("loom: %w", err)
					if firstErr == nil {
						firstErr = err
					}
					if p.err == nil {
						p.err = err
					}
					reject(i)
					continue
				}
			}
		}
	}
	p.loom.ProcessBatchFunc(len(batch), at, validate)
	return firstErr
}

// AddEdgeE feeds one stream edge, returning an error instead of panicking
// on corrupt input (a label conflict with an already-recorded vertex). The
// edge is dropped on error and the error is also retained as the sticky
// Err. Self-loops and duplicates are tolerated (dropped), matching the
// robustness expected of an online ingest path. Safe for concurrent use.
func (p *Partitioner) AddEdgeE(u int64, lu string, v int64, lv string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wal != nil || p.walClosed || p.follower {
		// Logged as (and replayed exactly like) a one-edge batch; PR 4's
		// golden guarantee makes the two paths bit-identical.
		one := [1]StreamEdge{{U: u, LU: lu, V: v, LV: lv}}
		if err := p.walAppendBatch(one[:]); err != nil {
			return err
		}
	}
	se := graph.StreamEdge{
		U: graph.VertexID(u), LU: graph.Label(lu),
		V: graph.VertexID(v), LV: graph.Label(lv),
	}
	if p.g != nil {
		if _, err := p.g.EnsureEdge(se.U, se.LU, se.V, se.LV); err != nil {
			err = fmt.Errorf("loom: %w", err)
			if p.err == nil {
				p.err = err
			}
			return err
		}
	}
	p.streamer.ProcessEdge(se)
	// Per-edge ingest does not pay a publish per call (that would copy a
	// dirty page per edge); it flags the read surface stale instead, and
	// readers fall back to the locked path until the next batch boundary
	// (AddBatch, Flush, or a Snapshot) publishes.
	p.pending.Store(true)
	return nil
}

// AddEdge feeds one stream edge. It is the historical per-edge ingest
// call, kept for compatibility: it delegates to AddEdgeE and panics on
// corrupt input (AddEdge has no error channel by design). New code should
// prefer AddBatch, which amortises per-call overhead and returns errors.
func (p *Partitioner) AddEdge(u int64, lu string, v int64, lv string) {
	if err := p.AddEdgeE(u, lu, v, lv); err != nil {
		panic(err.Error())
	}
}

// AddStreamEdge is AddEdge for a StreamEdge value.
func (p *Partitioner) AddStreamEdge(e StreamEdge) { p.AddEdge(e.U, e.LU, e.V, e.LV) }

// Err returns the first ingest error (a corrupt edge dropped by AddBatch,
// AddEdgeE or a batch), or nil. The error is sticky: it is never cleared,
// so a producer pipeline can ignore per-batch errors and check once at
// end-of-stream.
func (p *Partitioner) Err() error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.err
}

// GraphMemory reports the recorded graph's memory breakdown (adjacency,
// duplicate-edge set, edge log, intern tables) and how much of the edge
// log is resident on disk rather than in memory. ok is false when graph
// recording is disabled. O(|V|); sample it, don't call per edge.
func (p *Partitioner) GraphMemory() (m graph.MemStats, ok bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.g == nil {
		return graph.MemStats{}, false
	}
	return p.g.Mem(), true
}

// GraphSize reports the recorded graph's vertex and edge counts (the
// denominator of any bytes-per-edge figure over GraphMemory). ok is false
// when graph recording is disabled.
func (p *Partitioner) GraphSize() (vertices, edges int, ok bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.g == nil {
		return 0, 0, false
	}
	return p.g.NumVertices(), p.g.NumEdges(), true
}

// GraphCompact retries any recorded-graph edge-log spills that previously
// failed (see Options.SpillDir). It is a no-op — and returns nil — when
// recording is disabled or spilling is not configured. Checkpoint calls
// this automatically.
func (p *Partitioner) GraphCompact() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.g == nil {
		return nil
	}
	return p.g.Compact()
}

// Flush drains the sliding window, assigning all buffered edges. Call at
// end-of-stream (or at a checkpoint) before reading final placements.
//
// On a durable partitioner the flush is logged before it is applied; if
// the log rejects the record (disk failure, or Close already ran) the
// flush is NOT applied — the in-memory state must never run ahead of what
// recovery can reproduce — and the error is retained as the sticky Err
// (Flush itself has no error return, for compatibility).
func (p *Partitioner) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.walAppendFlush(); err != nil {
		return
	}
	p.streamer.Flush()
	p.publishLocked()
}

// EventKind discriminates placement events.
type EventKind uint8

const (
	// EventPlace reports a vertex permanently assigned to a partition.
	// Vertices are never reassigned in one-pass streaming, so replaying
	// EventPlace events reconstructs the assignment exactly.
	EventPlace EventKind = iota
	// EventEvict reports an edge leaving the sliding window Ptemp (Loom
	// partitioners only; baselines buffer nothing). Its endpoints are
	// either already placed or placed by EventPlace events of the same
	// eviction round.
	EventEvict
)

// PlacementEvent is one observable partitioning decision: a vertex →
// partition placement, or a window eviction. Events carry a per-partitioner
// sequence number, dense from 0, in the exact order decisions were taken.
type PlacementEvent struct {
	Seq  uint64
	Kind EventKind
	// V is the placed vertex (EventPlace) or one endpoint of the evicted
	// edge (EventEvict).
	V int64
	// Other is the second endpoint of the evicted edge (EventEvict only).
	Other int64
	// Partition is the target partition (EventPlace); -1 for EventEvict.
	Partition int
}

// OnPlace subscribes fn to placement events: every vertex → partition
// decision (and, for Loom, every window eviction) is delivered exactly
// once, in decision order, as it happens — the feed a query router needs to
// mirror the assignment live. Subscribe before ingesting for a complete
// mirror; events are not replayed retroactively. To subscribe after ingest
// has started, use Subscribe, which additionally reports the resume point
// the mirror needs to splice a snapshot onto the live feed.
//
// Handlers run synchronously on the ingesting goroutine while the
// partitioner's ingest lock is held: they must be fast and must not call
// back into the Partitioner (hand the event to a channel or an
// independently-locked structure instead). Multiple handlers all receive
// every event. Offline refinement (Refine) does not emit events — it
// produces a new assignment rather than streaming decisions; take a
// Snapshot after refining instead.
func (p *Partitioner) OnPlace(fn func(PlacementEvent)) { p.Subscribe(fn) }

// Subscribe is OnPlace with a resume point: it registers fn and returns the
// sequence number the first event delivered to fn will carry. The contract,
// which holds even when the subscription races ongoing ingest:
//
//   - fn receives every event with Seq >= the returned firstSeq, exactly
//     once, in Seq order, with no holes (Seqs are dense).
//   - Events with Seq < firstSeq were emitted before the subscription and
//     are not replayed — but a Snapshot taken any time after Subscribe
//     returns covers every placement those missed events reported. Events
//     are emitted while the ingest lock is held and each batch publishes
//     its epoch before releasing that lock, so the snapshot cannot be
//     older than the last pre-subscription event.
//
// Placements are write-once (a vertex is never reassigned), so the pair
// (snapshot, event stream from firstSeq) is a complete and consistent view
// of every placement decision regardless of when the subscription
// happened: route a vertex through the live event mirror first and fall
// back to the snapshot for anything the feed has not delivered. This is
// the splice a late-joining query router performs at attach time — see the
// router package.
func (p *Partitioner) Subscribe(fn func(PlacementEvent)) (firstSeq uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handlers = append(p.handlers, fn)
	p.installEventHooksLocked()
	return p.seq
}

// installEventHooksLocked installs the streamer-level event hooks exactly
// once (p.mu held for writing). Recovery calls it before replay when the
// checkpointed partitioner had subscribers, so the event sequence keeps
// advancing through replayed decisions — with no handlers yet, emit
// stamps and counts but fans out to nobody.
func (p *Partitioner) installEventHooksLocked() {
	if p.evHooked {
		return
	}
	p.evHooked = true
	if p.tr != nil {
		p.tr.SetAssignHook(func(v int64, id partition.ID) {
			p.emit(PlacementEvent{Kind: EventPlace, V: v, Partition: int(id)})
		})
	}
	if p.loom != nil {
		p.loom.SetEvictHook(func(u, v int64) {
			p.emit(PlacementEvent{Kind: EventEvict, V: u, Other: v, Partition: -1})
		})
	}
}

// emit stamps and fans out one event. Called only from the streamer's
// hooks, i.e. with p.mu held for writing by the ingesting goroutine.
func (p *Partitioner) emit(ev PlacementEvent) {
	ev.Seq = p.seq
	p.seq++
	for _, h := range p.handlers {
		h(ev)
	}
}

// Snapshot is an immutable view of a partitioning at one consistent batch
// boundary: it shares no mutable state with the partitioner, so it can be
// read from any goroutine, for any length of time, without blocking — or
// being invalidated by — ongoing ingest. Snapshots are backed by
// copy-on-write assignment pages shared with the partitioner's published
// epochs; holding one costs nothing beyond the pages that ingest has since
// replaced.
type Snapshot struct {
	name string
	e    *partition.Epoch      // epoch-backed (the common case)
	a    *partition.Assignment // assignment-backed: refined, or the deep-copy fallback

	asgOnce sync.Once
	asg     map[int64]int // memoised Assignments result
}

// newSnapshot wraps a published read view.
func newSnapshot(name string, rv *readView) *Snapshot {
	if rv.refined != nil {
		return &Snapshot{name: name, a: rv.refined}
	}
	return &Snapshot{name: name, e: rv.epoch}
}

// Snapshot captures the current assignment (the refined one, if Refine has
// run). The capture is O(1) — one atomic load of the last published epoch,
// no lock, no per-vertex copying — so routers can snapshot at arbitrary
// frequency while ingest continues. Because ingest applies batches
// atomically and publishes at batch boundaries, a snapshot always
// corresponds to a batch boundary — the state some single-threaded prefix
// replay of the stream would produce. (After per-edge AddEdge ingest the
// capture briefly takes the ingest lock to publish the unpublished tail;
// batch ingest never pays this.)
func (p *Partitioner) Snapshot() *Snapshot {
	if rv := p.loadView(); rv != nil {
		return newSnapshot(p.name, rv)
	}
	// Per-edge ingest left the published epoch stale: publish the tail.
	p.mu.Lock()
	rv := p.publishLocked()
	p.mu.Unlock()
	if rv != nil {
		return newSnapshot(p.name, rv)
	}
	// No tracker (never the case for shipped streamers): isolated deep copy.
	p.mu.RLock()
	defer p.mu.RUnlock()
	return &Snapshot{name: p.name, a: p.snapshotLocked()}
}

// snapshotLocked returns an isolated assignment; p.mu must be held (read
// or write). The refined assignment is immutable once installed (Refine
// replaces it wholesale and its vertex table — a pre-refine snapshot clone
// — never grows), so it is shared rather than copied; the live tracker's
// state is cloned.
func (p *Partitioner) snapshotLocked() *partition.Assignment {
	if p.refined != nil {
		return p.refined
	}
	return p.streamer.Snapshot()
}

// Name returns the algorithm name that produced the snapshot.
func (s *Snapshot) Name() string { return s.name }

// Partitions returns k.
func (s *Snapshot) Partitions() int {
	if s.e != nil {
		return s.e.K()
	}
	return s.a.K
}

// PartitionOf returns v's partition in [0, Partitions), or ok = false if v
// was unassigned when the snapshot was taken (not yet seen, or still
// buffered in the window Ptemp). Point reads are lock-free and allocate
// nothing.
func (s *Snapshot) PartitionOf(v int64) (int, bool) {
	var id partition.ID
	if s.e != nil {
		id = s.e.Of(graph.VertexID(v))
	} else {
		id = s.a.Of(graph.VertexID(v))
	}
	if id == partition.Unassigned {
		return 0, false
	}
	return int(id), true
}

// Sizes returns the vertex count of each partition. The sizes were
// computed once when the snapshot's state was captured; the returned slice
// is shared and immutable — callers must not modify it (copy first if you
// need a mutable slice).
func (s *Snapshot) Sizes() []int {
	if s.e != nil {
		return s.e.Sizes()
	}
	return s.a.Sizes
}

// NumAssigned returns the number of placed vertices.
func (s *Snapshot) NumAssigned() int {
	if s.e != nil {
		return s.e.NumAssigned()
	}
	return s.a.NumAssigned()
}

// Imbalance returns max |Vi|/(n/k) − 1 over the snapshot.
func (s *Snapshot) Imbalance() float64 {
	return partition.ImbalanceOf(s.Partitions(), s.Sizes())
}

// Each calls f for every assigned vertex in first-seen order. Each is the
// zero-alloc bulk read: it walks the snapshot's shared pages directly,
// allocating nothing (unlike Assignments, which materialises a map).
func (s *Snapshot) Each(f func(v int64, part int)) {
	if s.e != nil {
		s.e.Each(func(v graph.VertexID, id partition.ID) { f(int64(v), int(id)) })
		return
	}
	s.a.Each(func(v graph.VertexID, id partition.ID) { f(int64(v), int(id)) })
}

// Assignments materialises the snapshot as a vertex → partition map. The
// map is built once on first call and memoised — subsequent calls return
// the same map — so callers must treat it as read-only (the snapshot is
// immutable; iterate with Each for allocation-free bulk reads).
func (s *Snapshot) Assignments() map[int64]int {
	s.asgOnce.Do(func() {
		out := make(map[int64]int, s.NumAssigned())
		s.Each(func(v int64, part int) { out[v] = part })
		s.asg = out
	})
	return s.asg
}

// PartitionOf returns v's partition in [0, Partitions), or ok = false while
// v is unassigned (not yet seen, or still buffered in the window Ptemp).
//
// The read is lock-free: one atomic load of the last published epoch, a
// concurrent hash probe and two array indexes — no mutex, no allocation —
// so any number of reader goroutines can issue point reads at full speed
// while producers ingest. It reflects the last batch boundary; only after
// per-edge AddEdge ingest (which defers publishing) does it fall back to a
// read-locked path so callers still see their own writes.
func (p *Partitioner) PartitionOf(v int64) (int, bool) {
	if rv := p.loadView(); rv != nil {
		var id partition.ID
		if rv.refined != nil {
			id = rv.refined.Of(graph.VertexID(v))
		} else {
			id = rv.epoch.Of(graph.VertexID(v))
		}
		if id == partition.Unassigned {
			return 0, false
		}
		return int(id), true
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	var id partition.ID
	switch {
	case p.refined != nil:
		id = p.refined.Of(graph.VertexID(v))
	case p.tr != nil:
		id = p.tr.PartOf(graph.VertexID(v))
	default:
		id = p.streamer.Assignment().Of(graph.VertexID(v))
	}
	if id == partition.Unassigned {
		return 0, false
	}
	return int(id), true
}

// Partitions returns k.
func (p *Partitioner) Partitions() int { return p.opt.Partitions }

// Sizes returns the current vertex count of each partition as a fresh
// copy, read atomically (a concurrent eviction's cluster assignment is
// either fully included or not at all). Lock-free on the common path, like
// PartitionOf.
func (p *Partitioner) Sizes() []int {
	if rv := p.loadView(); rv != nil {
		if rv.refined != nil {
			return append([]int(nil), rv.refined.Sizes...)
		}
		return append([]int(nil), rv.epoch.Sizes()...)
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	switch {
	case p.refined != nil:
		return append([]int(nil), p.refined.Sizes...)
	case p.tr != nil:
		return p.tr.Sizes()
	default:
		return append([]int(nil), p.streamer.Assignment().Sizes...)
	}
}

// Assignments returns a copy of the full vertex → partition map, taken
// from a consistent snapshot (it can never observe a half-applied batch or
// eviction). The map is built from the last published epoch with no lock
// held on the common path.
func (p *Partitioner) Assignments() map[int64]int {
	if rv := p.loadView(); rv != nil {
		// A fresh wrapper per call keeps the documented copy semantics
		// (the memoised map is shared only within one Snapshot).
		return newSnapshot(p.name, rv).Assignments()
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	var a *partition.Assignment
	if p.refined != nil {
		a = p.refined
	} else {
		a = p.streamer.Assignment()
	}
	out := make(map[int64]int, a.NumAssigned())
	a.Each(func(v graph.VertexID, id partition.ID) { out[int64(v)] = int(id) })
	return out
}

// Stats returns processing counters (Loom-specific fields are zero for
// baselines).
func (p *Partitioner) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.loom == nil {
		return Stats{}
	}
	st := p.loom.Stats()
	return Stats{
		EdgesProcessed: st.EdgesProcessed,
		ImmediateEdges: st.ImmediateEdges,
		WindowedEdges:  st.WindowedEdges,
		Evictions:      st.Evictions,
		WindowLen:      p.loom.Window().Len(),
	}
}

// AddQuery extends the workload while streaming ("the TPSTry++ may be
// trivially updated to account for change in the frequencies of workload
// queries", §2). Only valid for Loom partitioners. Safe for concurrent use
// with ingest: edges arriving after AddQuery returns see the new motifs.
func (p *Partitioner) AddQuery(name string, pat *Pattern, freq float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.loom == nil {
		return fmt.Errorf("loom: %s baseline has no workload to update", p.name)
	}
	if err := p.walAppendQuery(name, pat, freq); err != nil {
		return err
	}
	return p.applyQueryLocked(name, pat, freq)
}

// applyQueryLocked is AddQuery's application half, shared with WAL replay
// and with the checkpoint's query-tail restore. Validation failures are
// deterministic, so a logged AddQuery that failed fails identically on
// replay.
func (p *Partitioner) applyQueryLocked(name string, pat *Pattern, freq float64) error {
	if err := p.trie.AddQuery(pat.g, freq); err != nil {
		return err
	}
	p.wl.Add(name, pat, freq)
	p.added = append(p.added, addedQuery{name: name, pat: pat, freq: freq})
	return nil
}

// Evaluation reports partitioning quality over the recorded graph.
type Evaluation struct {
	// IPT is the frequency-weighted inter-partition traversal count for
	// the workload (§1.3's quality measure).
	IPT float64
	// EdgeCut counts edges crossing partitions.
	EdgeCut int
	// Imbalance is max |Vi|/(n/k) − 1.
	Imbalance float64
	// AssignedVertices is the number of placed vertices.
	AssignedVertices int
}

// Evaluate executes the workload over the recorded graph and the current
// assignment. The Partitioner must have been built with graph recording
// enabled and (for baselines) a workload.
//
// Evaluate runs on a snapshot captured in O(1) under the read lock — the
// last published epoch plus the accepted-edge log's current length —
// after which the graph replay and the workload execution (typically far
// more expensive) run with no lock held, so concurrent AddBatch never
// stalls behind an in-flight evaluation.
//
// Replay window: the replayed graph is every accepted edge since the
// partitioner started (or was recovered) — checkpoints bound the log's
// resident memory, not its extent. With Options.SpillDir set, frozen log
// chunks live on disk and are streamed back one at a time here, so a
// long-lived durable partitioner's evaluation memory stays bounded while
// its replay window stays complete. Without a spill directory the log is
// fully resident at ~2–4 bytes per accepted edge.
func (p *Partitioner) Evaluate() (Evaluation, error) {
	rec, e, a, iwl, err := p.captureEval("Evaluate")
	if err != nil {
		return Evaluation{}, err
	}
	// No lock held from here: flatten the epoch and replay the graph.
	if a == nil {
		a = e.Materialise()
	}
	g := replayRecorded(rec)
	res, err := workload.Execute(g, a, iwl, workload.Options{})
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{
		IPT:              res.IPT,
		EdgeCut:          partition.EdgeCut(g, a),
		Imbalance:        partition.Imbalance(a),
		AssignedVertices: a.NumAssigned(),
	}, nil
}

// captureEval captures a consistent (accepted-edge replay, assignment)
// pair for Evaluate/Simulate under the read lock, in O(1) on the common
// path: the replay pins append-only headers and the edge log's immutable
// chunk list, and the epoch/refined view is immutable. Exactly one of the
// returned epoch and assignment is non-nil; after per-edge ingest, whose
// tail is unpublished, it degrades to the isolated O(V) assignment
// capture.
func (p *Partitioner) captureEval(op string) (graph.Replay, *partition.Epoch, *partition.Assignment, workload.Workload, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.g == nil {
		return graph.Replay{}, nil, nil, workload.Workload{}, fmt.Errorf("loom: graph recording disabled; %s unavailable", op)
	}
	if p.wl == nil || p.wl.Len() == 0 {
		return graph.Replay{}, nil, nil, workload.Workload{}, fmt.Errorf("loom: no workload to %s against", op)
	}
	rec := p.g.CaptureReplay()
	var e *partition.Epoch
	var a *partition.Assignment
	if rv := p.loadView(); rv != nil { // under RLock: replay and view are mutually consistent
		e, a = rv.epoch, rv.refined
	}
	if e == nil && a == nil {
		a = p.snapshotLocked()
	}
	return rec, e, a, p.wl.internal(), nil
}

// replayRecorded rebuilds the recorded graph from the accepted-edge
// replay, with no lock held (spilled log chunks are read back one at a
// time). The replay reproduces every edge and every connected vertex;
// degenerate inputs (self-loops, corrupt edges) may have interned
// isolated vertices in the live graph that the replay omits — they have
// no edges, so no workload pattern reaches them and every evaluation
// metric is unchanged.
func replayRecorded(rec graph.Replay) *graph.Graph {
	g := graph.New()
	err := rec.Each(func(e graph.StreamEdge) error {
		if _, err := g.EnsureEdge(e.U, e.LU, e.V, e.LV); err != nil {
			// The log holds only edges the recorded graph accepted;
			// replaying them cannot conflict.
			return fmt.Errorf("loom: corrupt accepted-edge log: %w", err)
		}
		return nil
	})
	if err != nil {
		panic(err.Error())
	}
	return g
}

// RefineStats reports an offline refinement run (see Refine).
type RefineStats struct {
	Passes    int
	Moves     int
	CutBefore float64 // workload-weighted edge cut before
	CutAfter  float64
}

// Refine runs the offline TAPER-style re-partitioning pass the paper
// proposes integrating with Loom (§6): vertices migrate between partitions
// when that reduces the workload-weighted edge cut, within the balance
// bound. It requires graph recording and a workload; the partitioner's
// assignment is updated in place conceptually — subsequent PartitionOf and
// Evaluate calls observe the refined placement, but the streaming state is
// finished: call only after Flush.
func (p *Partitioner) Refine(maxPasses int) (RefineStats, error) {
	p.mu.RLock()
	if p.g == nil {
		p.mu.RUnlock()
		return RefineStats{}, fmt.Errorf("loom: graph recording disabled; Refine unavailable")
	}
	if p.wl == nil || p.wl.Len() == 0 {
		p.mu.RUnlock()
		return RefineStats{}, fmt.Errorf("loom: no workload to refine against")
	}
	trie := p.trie
	if trie == nil {
		// Baselines carry a workload but no trie; build one.
		scheme := signature.NewScheme(p.opt.SignaturePrime, p.opt.Seed)
		t, err := p.wl.internal().BuildTrie(scheme)
		if err != nil {
			p.mu.RUnlock()
			return RefineStats{}, err
		}
		trie = t
	}
	// Refinement runs on an isolated snapshot of the graph and the
	// streamer's assignment, but it also reads the live trie — which a
	// concurrent AddQuery may mutate — so the read lock is held for the
	// whole pass: concurrent reads proceed, ingest mutations wait (Refine
	// is a post-Flush operation; there should be none). The result is
	// swapped in atomically below.
	g := p.g.Clone()
	a := p.streamer.Snapshot()
	obs := p.observedLocked()
	opt := p.opt
	refined, st, err := refine.Refine(g, a, trie, refine.Config{
		Capacity:  partition.CapacityFor(opt.ExpectedVertices, opt.Partitions, opt.MaxImbalance),
		MaxPasses: maxPasses,
	})
	p.mu.RUnlock()
	if err != nil {
		return RefineStats{}, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// The read lock was released between refining and installing; if a
	// producer ingested anything in that window — placed vertices, or
	// edges merely buffered in Ptemp whose endpoints a later Flush will
	// place — the refined assignment would silently hide them (p.refined
	// supersedes the streamer), so refuse instead: the caller re-runs once
	// ingest has actually quiesced.
	if cur := p.observedLocked(); cur != obs {
		return RefineStats{}, fmt.Errorf("loom: %d edges were ingested while Refine ran; re-run after ingest quiesces", cur-obs)
	}
	p.refined = refined
	p.publishLocked() // swap the lock-free read surface to the refined view
	return RefineStats{Passes: st.Passes, Moves: st.Moves, CutBefore: st.CutBefore, CutAfter: st.CutAfter}, nil
}

// observedLocked returns the streamer's observed-edge count — which
// advances on every non-degenerate ingest, including edges only buffered
// in the window — falling back to the assigned-vertex count for streamers
// without a tracker; p.mu must be held.
func (p *Partitioner) observedLocked() int {
	if p.tr != nil {
		return p.tr.ObservedEdges()
	}
	return p.streamer.Assignment().NumAssigned()
}

// Restream returns a fresh Loom partitioner that uses this partitioner's
// current assignment as a restreaming prior (§6 future work): replay the
// stream (in any order) through the returned partitioner and cold-start
// decisions will keep the localities discovered on the first pass. Only
// available for Loom partitioners.
func (p *Partitioner) Restream() (*Partitioner, error) {
	p.mu.RLock()
	if p.loom == nil {
		name := p.name
		p.mu.RUnlock()
		return nil, fmt.Errorf("loom: Restream requires a Loom partitioner, not %s", name)
	}
	opt := p.opt
	wl := p.wl
	iwl := wl.internal()
	// The prior is an isolated snapshot, so the returned partitioner never
	// races this one's still-growing vertex table.
	prior := p.snapshotLocked()
	p.mu.RUnlock()
	scheme := signature.NewScheme(opt.SignaturePrime, opt.Seed)
	trie, err := iwl.BuildTrie(scheme)
	if err != nil {
		return nil, err
	}
	lm, err := core.New(core.Config{
		K:                opt.Partitions,
		Capacity:         partition.CapacityFor(opt.ExpectedVertices, opt.Partitions, opt.MaxImbalance),
		WindowSize:       opt.WindowSize,
		SupportThreshold: opt.SupportThreshold,
		Alpha:            opt.Alpha,
		MaxImbalance:     opt.MaxImbalance,
		Workers:          opt.Workers,
		Prior:            prior,
	}, trie)
	if err != nil {
		return nil, err
	}
	np := &Partitioner{
		name: "loom", streamer: lm, tr: lm.Tracker(), loom: lm,
		trie: trie, wl: wl, opt: opt, baseQueries: wl.Len(),
	}
	// The restream partitioner must not share the original's spill
	// directory — its fresh edge log would overwrite the original's chunk
	// files — so its recorded graph stays in memory.
	memOpt := opt
	memOpt.SpillDir = ""
	if np.g, err = newRecordedGraph(memOpt); err != nil {
		return nil, err
	}
	return np, nil
}

// Simulation reports a simulated distributed execution of the workload
// (see Simulate).
type Simulation struct {
	// LocalHops and RemoteHops count intra- and inter-machine adjacency
	// traversals during workload execution.
	LocalHops, RemoteHops int
	// TotalCost is the frequency-weighted cost under the given model.
	TotalCost float64
	// MachineLoad is the number of traversal steps served per machine
	// (last slot: unassigned/Ptemp vertices).
	MachineLoad []int
}

// Simulate executes the workload over the recorded graph with an explicit
// distributed cost model: every adjacency step costs localCost on one
// machine and remoteCost across machines (0 values take the defaults
// 1 and 1000). This turns the paper's ipt proxy into a latency-flavoured
// estimate; see internal/simulate. The replay window is the same as
// Evaluate's: the full accepted-edge log, streamed chunk-at-a-time from
// disk when Options.SpillDir is set.
func (p *Partitioner) Simulate(localCost, remoteCost float64) (Simulation, error) {
	// Like Evaluate: O(1) capture under the read lock, replay and simulate
	// with no lock held.
	rec, e, a, iwl, err := p.captureEval("Simulate")
	if err != nil {
		return Simulation{}, err
	}
	if a == nil {
		a = e.Materialise()
	}
	g := replayRecorded(rec)
	res, err := simulate.Run(g, a, iwl,
		simulate.CostModel{LocalCost: localCost, RemoteCost: remoteCost}, 0)
	if err != nil {
		return Simulation{}, err
	}
	return Simulation{
		LocalHops:   res.LocalHops,
		RemoteHops:  res.RemoteHops,
		TotalCost:   res.TotalCost,
		MachineLoad: res.MachineLoad,
	}, nil
}

// GenerateDataset produces one of the paper's evaluation graphs ("dblp",
// "provgen", "musicbrainz", "lubm") as a stream in insertion order. scale
// is a target vertex count.
func GenerateDataset(name string, scale int, seed int64) ([]StreamEdge, error) {
	g, err := dataset.Generate(name, scale, seed)
	if err != nil {
		return nil, err
	}
	return toPublicStream(graph.StreamOf(g, graph.OrderOriginal, nil)), nil
}

// DatasetWorkload returns the canonical query workload for one of the
// paper's datasets.
func DatasetWorkload(name string) (*Workload, error) {
	iwl, err := workload.ForDataset(name)
	if err != nil {
		return nil, err
	}
	w := NewWorkload(iwl.Name)
	w.queries = iwl.Queries
	return w, nil
}

// OrderStream reorders a stream breadth-first ("bfs"), depth-first ("dfs")
// or uniformly at random ("random") — the three stream orders of the
// paper's evaluation (§5.1). The input must form a valid graph.
func OrderStream(edges []StreamEdge, order string, seed int64) ([]StreamEdge, error) {
	g := graph.New()
	for _, e := range edges {
		if _, err := g.EnsureEdge(graph.VertexID(e.U), graph.Label(e.LU), graph.VertexID(e.V), graph.Label(e.LV)); err != nil {
			return nil, err
		}
	}
	var o graph.StreamOrder
	switch order {
	case "bfs":
		o = graph.OrderBFS
	case "dfs":
		o = graph.OrderDFS
	case "random":
		o = graph.OrderRandom
	case "original":
		o = graph.OrderOriginal
	default:
		return nil, fmt.Errorf("loom: unknown stream order %q", order)
	}
	return toPublicStream(graph.StreamOf(g, o, rand.New(rand.NewSource(seed)))), nil
}

func toPublicStream(s graph.Stream) []StreamEdge {
	out := make([]StreamEdge, len(s))
	for i, e := range s {
		out[i] = StreamEdge{U: int64(e.U), LU: string(e.LU), V: int64(e.V), LV: string(e.LV)}
	}
	return out
}
