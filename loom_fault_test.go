package loom

// Fault-injection sweep (ISSUE 7, satellite a): crash the WAL writer at
// arbitrary byte offsets — every record boundary of a small stream, plus
// mid-record and mid-checkpoint offsets — resolve the crash both as a
// power loss (unsynced bytes vanish) and a process kill (they survive),
// and require recovery to land bit-identically on the longest
// fully-persisted prefix of the stream. Runs under -race in CI.
//
// The sweep drives openFS over a deterministic in-memory filesystem
// (wal.MemFS) whose write budget tears the stream at an exact byte; a dry
// run records the cumulative bytes written after each ingest call, which
// makes every record boundary addressable without knowing the encoding.

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"

	"loom/internal/wal"
)

// faultStream builds the sweep fixture: a 120-edge prefix of the dblp
// stream against a 64-edge window, small enough to sweep every boundary
// but large enough that evictions — and therefore placements — happen
// throughout.
func faultStream(t testing.TB) (*Workload, []StreamEdge, Options) {
	t.Helper()
	wl, err := DatasetWorkload("dblp")
	if err != nil {
		t.Fatal(err)
	}
	edges, err := GenerateDataset("dblp", 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := OrderStream(edges, "bfs", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ordered) < 120 {
		t.Fatalf("fixture too small: %d edges", len(ordered))
	}
	opt := Options{
		Partitions: 4, ExpectedVertices: 256, WindowSize: 64, Seed: 42,
		WALDir: "wal", WALSync: WALSyncAlways,
	}
	return wl, ordered[:120], opt
}

func faultHash(p *Partitioner) uint64 {
	type pair struct {
		v int64
		p int
	}
	var ps []pair
	p.Snapshot().Each(func(v int64, part int) { ps = append(ps, pair{v, part}) })
	sort.Slice(ps, func(i, j int) bool { return ps[i].v < ps[j].v })
	h := fnv.New64a()
	for _, kv := range ps {
		fmt.Fprintf(h, "%d:%d;", kv.v, kv.p)
	}
	return h.Sum64()
}

// prefixGolden computes (and memoises) the reference state after the
// first n edges, via a plain in-memory partitioner that never sees a WAL.
type prefixGolden struct {
	t     testing.TB
	wl    *Workload
	edges []StreamEdge
	opt   Options
	memo  map[int]goldenState
}

type goldenState struct {
	hash  uint64
	stats Stats
}

func (g *prefixGolden) at(n int) goldenState {
	if s, ok := g.memo[n]; ok {
		return s
	}
	opt := g.opt
	opt.WALDir = ""
	p, err := New(opt, g.wl)
	if err != nil {
		g.t.Fatal(err)
	}
	for _, e := range g.edges[:n] {
		if err := p.AddEdgeE(e.U, e.LU, e.V, e.LV); err != nil {
			g.t.Fatal(err)
		}
	}
	s := goldenState{hash: faultHash(p), stats: p.Stats()}
	g.memo[n] = s
	return s
}

// dryRun ingests the whole stream uncrashed and returns the cumulative
// fs.Written() watermark after each edge's append — boundaries[i] is the
// exact byte total once edge i is fully on disk.
func dryRun(t *testing.T, wl *Workload, edges []StreamEdge, opt Options) []int64 {
	fs := wal.NewMemFS()
	p, _, err := openFS(fs, opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	boundaries := make([]int64, len(edges))
	for i, e := range edges {
		if err := p.AddEdgeE(e.U, e.LU, e.V, e.LV); err != nil {
			t.Fatal(err)
		}
		boundaries[i] = fs.Written()
	}
	return boundaries
}

// crashRecoverCompare ingests the stream into a budgeted MemFS until the
// crash fires, resolves it with resolve, reopens, and requires the
// recovered partitioner to equal the golden prefix of expect edges.
func crashRecoverCompare(t *testing.T, wl *Workload, edges []StreamEdge, opt Options,
	budget int64, resolve func(*wal.MemFS), expect int, golden *prefixGolden) {
	t.Helper()
	fs := wal.NewMemFS()
	p1, _, err := openFS(fs, opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	// budget is an absolute watermark from dryRun; SetBudget is relative
	// to what this fs has already written (the open-time segment header).
	fs.SetBudget(budget - fs.Written())
	for _, e := range edges {
		if err := p1.AddEdgeE(e.U, e.LU, e.V, e.LV); err != nil {
			break // the crash fired; the writer is down
		}
	}
	resolve(fs)

	p2, info, err := openFS(fs, opt, wl)
	if err != nil {
		t.Fatalf("budget %d: recovery failed: %v", budget, err)
	}
	if info.LastLSN != uint64(expect) {
		t.Fatalf("budget %d: recovered to LSN %d, want %d (torn=%v, warnings=%v)",
			budget, info.LastLSN, expect, info.TornTail, info.Warnings)
	}
	want := golden.at(expect)
	if got := faultHash(p2); got != want.hash {
		t.Fatalf("budget %d: recovered hash %#x != golden prefix(%d) %#x", budget, got, expect, want.hash)
	}
	if got := p2.Stats(); got != want.stats {
		t.Fatalf("budget %d: recovered stats %+v != golden prefix(%d) %+v", budget, got, expect, want.stats)
	}
	// The recovered partitioner must also still ingest.
	rest := edges[expect:]
	if len(rest) > 0 {
		e := rest[0]
		if err := p2.AddEdgeE(e.U, e.LU, e.V, e.LV); err != nil {
			t.Fatalf("budget %d: recovered partitioner refuses ingest: %v", budget, err)
		}
	}
}

// TestFaultSweepEveryRecordBoundary crashes the writer at, just before,
// and just after every record boundary of the stream, under both crash
// resolutions. With WALSyncAlways every completed append is synced, so
// the recoverable prefix is identical for power loss and process kill:
// exactly the records whose bytes fit the budget.
func TestFaultSweepEveryRecordBoundary(t *testing.T) {
	wl, edges, opt := faultStream(t)
	boundaries := dryRun(t, wl, edges, opt)
	golden := &prefixGolden{t: t, wl: wl, edges: edges, opt: opt, memo: map[int]goldenState{}}

	// prefixAt returns how many records are fully written within budget b.
	prefixAt := func(b int64) int {
		n := 0
		for n < len(boundaries) && boundaries[n] <= b {
			n++
		}
		return n
	}
	resolutions := []struct {
		name    string
		resolve func(*wal.MemFS)
	}{
		{"power-loss", func(m *wal.MemFS) { m.CrashLose() }},
		{"process-kill", func(m *wal.MemFS) { m.CrashKeep() }},
	}
	for _, res := range resolutions {
		t.Run(res.name, func(t *testing.T) {
			for i, b := range boundaries {
				// Exactly at the boundary: edge i fully persisted.
				crashRecoverCompare(t, wl, edges, opt, b, res.resolve, i+1, golden)
				// Mid-record: a torn tail that must truncate back to edge i-1.
				if mid := b - 3; mid >= 0 {
					crashRecoverCompare(t, wl, edges, opt, mid, res.resolve, prefixAt(mid), golden)
				}
				// A few bytes into the next record's frame.
				if i+1 < len(boundaries) {
					crashRecoverCompare(t, wl, edges, opt, b+2, res.resolve, i+1, golden)
				}
			}
		})
	}
}

// TestFaultSweepCheckpointWrite crashes at every byte region of a
// checkpoint write — the header, the payload, the trailing CRC — and
// requires recovery to fall back to the log alone (the atomic
// temp+rename means a torn checkpoint simply never exists), landing on
// the full pre-checkpoint state.
func TestFaultSweepCheckpointWrite(t *testing.T) {
	wl, edges, opt := faultStream(t)
	golden := &prefixGolden{t: t, wl: wl, edges: edges, opt: opt, memo: map[int]goldenState{}}
	const half = 60

	// Dry run to find the checkpoint's byte window [w0, w1).
	fs := wal.NewMemFS()
	p, _, err := openFS(fs, opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges[:half] {
		if err := p.AddEdgeE(e.U, e.LU, e.V, e.LV); err != nil {
			t.Fatal(err)
		}
	}
	w0 := fs.Written()
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	w1 := fs.Written()
	if w1 <= w0+100 {
		t.Fatalf("checkpoint window too small to sweep: [%d, %d)", w0, w1)
	}

	// Budgets are bytes allowed past the point the crash is armed — i.e.
	// offsets into the checkpoint write itself: the temp-file header, the
	// payload at several depths, and the trailing CRC.
	span := w1 - w0
	offsets := []int64{0, 4, 12, span / 4, span / 2, 3 * span / 4, span - 4, span - 1}
	for _, res := range []struct {
		name    string
		resolve func(*wal.MemFS)
	}{
		{"power-loss", func(m *wal.MemFS) { m.CrashLose() }},
		{"process-kill", func(m *wal.MemFS) { m.CrashKeep() }},
	} {
		t.Run(res.name, func(t *testing.T) {
			for _, budget := range offsets {
				fs := wal.NewMemFS()
				p1, _, err := openFS(fs, opt, wl)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range edges[:half] {
					if err := p1.AddEdgeE(e.U, e.LU, e.V, e.LV); err != nil {
						t.Fatal(err)
					}
				}
				fs.SetBudget(budget)
				if _, err := p1.Checkpoint(); err == nil {
					t.Fatalf("budget %d: checkpoint should have crashed", budget)
				}
				res.resolve(fs)

				p2, info, err := openFS(fs, opt, wl)
				if err != nil {
					t.Fatalf("budget %d: recovery failed: %v", budget, err)
				}
				if info.CheckpointLSN != 0 {
					t.Fatalf("budget %d: a torn checkpoint became visible", budget)
				}
				if info.LastLSN != half {
					t.Fatalf("budget %d: recovered to LSN %d, want %d", budget, info.LastLSN, half)
				}
				want := golden.at(half)
				if got := faultHash(p2); got != want.hash {
					t.Fatalf("budget %d: recovered hash %#x != golden %#x", budget, got, want.hash)
				}
			}
		})
	}

	// And the positive case: a checkpoint whose rename was covered by the
	// directory sync survives even a power loss with nothing else synced.
	fs2 := wal.NewMemFS()
	p1, _, err := openFS(fs2, opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges[:half] {
		if err := p1.AddEdgeE(e.U, e.LU, e.V, e.LV); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fs2.CrashLose()
	p2, info, err := openFS(fs2, opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !(info.CheckpointLSN != 0) || info.CheckpointLSN != half {
		t.Fatalf("durable checkpoint lost on power loss: %+v", info)
	}
	if got := faultHash(p2); got != golden.at(half).hash {
		t.Fatal("checkpoint-only recovery diverged")
	}
}
