package loom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"loom/internal/core"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/signature"
	"loom/internal/tpstry"
	"loom/internal/wal"
	"loom/internal/window"
)

// WALSyncPolicy selects when the write-ahead log fsyncs (Options.WALSync).
// The policies trade ingest latency against the durability of the most
// recent writes; recovery always lands on a consistent batch boundary
// under every policy — what varies is only how much recent ingest a crash
// can lose.
type WALSyncPolicy int

const (
	// WALSyncBatch (the default) group-commits: log records accumulate in
	// a buffer and are written and fsynced together once ~256 KiB have
	// staged, and always at Sync, Checkpoint, segment rotation and Close.
	// A crash or kill loses at most the ingest since the last such point.
	WALSyncBatch WALSyncPolicy = iota
	// WALSyncAlways writes and fsyncs every ingest call: once AddBatch (or
	// AddEdgeE, AddQuery, Flush) returns, that call is durable.
	WALSyncAlways
	// WALSyncNone group-commits writes like WALSyncBatch but never fsyncs
	// on ingest; the OS flushes when it pleases. Sync, Checkpoint,
	// rotation and Close still sync, so a checkpoint is always a hard
	// durability point.
	WALSyncNone
)

func (s WALSyncPolicy) String() string { return s.internal().String() }

func (s WALSyncPolicy) internal() wal.SyncPolicy {
	switch s {
	case WALSyncAlways:
		return wal.SyncAlways
	case WALSyncNone:
		return wal.SyncNone
	default:
		return wal.SyncBatch
	}
}

// WALFailurePolicy selects how a durable partitioner responds when the
// write-ahead log itself fails — a segment write or fsync error that
// survives the configured retries (Options.WALFailure).
type WALFailurePolicy int

const (
	// FailStop (the default) treats a log failure as fatal to ingest: the
	// failing call errors, the sticky Err latches, and every further
	// ingest call is refused. Nothing is ever applied that the log cannot
	// reproduce — the strict log-before-apply contract.
	FailStop WALFailurePolicy = iota
	// DegradeToMemory keeps placements flowing when the log fails: after
	// retries are exhausted a breaker trips, ingest continues memory-only,
	// and DurabilityLost reports the first error plus the LSN watermark of
	// the last record the disk is guaranteed to hold. A successful
	// Checkpoint on a recovered disk captures the full in-memory state,
	// re-arms the log and closes the breaker. Opt-in: serving availability
	// over the durability of the most recent ingest.
	DegradeToMemory
)

func (f WALFailurePolicy) String() string {
	switch f {
	case FailStop:
		return "fail-stop"
	case DegradeToMemory:
		return "degrade-to-memory"
	}
	return fmt.Sprintf("policy(%d)", int(f))
}

// ErrWALConfig reports that a checkpoint was written by a partitioner
// whose Options or base workload differ from the ones passed to Open.
// Everything that shapes placement decisions is fingerprinted (Workers is
// deliberately exempt: placements are bit-identical across worker counts,
// so a checkpoint is portable between them).
var ErrWALConfig = errors.New("loom: checkpoint does not match Options/workload")

// Typed recovery failures, re-exported from the wal layer for errors.Is.
// Open returns these (wrapped with context) instead of panicking when the
// directory is damaged beyond the degradations recovery tolerates on its
// own (torn tails, corrupt newest checkpoints).
var (
	// ErrWALCorrupt: structural damage that is not a recoverable torn tail.
	ErrWALCorrupt = wal.ErrCorrupt
	// ErrWALGap: a log segment between the checkpoint and the tail is
	// missing, so no consistent state can be rebuilt.
	ErrWALGap = wal.ErrGap
	// ErrWALNoCheckpoint: every checkpoint is unreadable and the log does
	// not reach back to the start of the stream.
	ErrWALNoCheckpoint = wal.ErrNoCheckpoint
)

// RecoveryInfo describes what Open found in the WAL directory.
type RecoveryInfo struct {
	// Recovered reports that prior state existed (a checkpoint and/or log
	// records) and was restored; false means a fresh directory.
	Recovered bool
	// CheckpointLSN is the log position of the restored checkpoint (0 if
	// none).
	CheckpointLSN uint64
	// ReplayedRecords is the number of log records replayed on top of the
	// checkpoint.
	ReplayedRecords int
	// LastLSN is the log position after recovery.
	LastLSN uint64
	// TornTail reports that the log ended in a torn write (a crashed
	// writer) and was truncated at the last intact record.
	TornTail bool
	// CheckpointFallback reports that the newest checkpoint was corrupt
	// and an older retained one was used.
	CheckpointFallback bool
	// Warnings lists every degradation tolerated during recovery.
	Warnings []string
}

// Open constructs a durable Loom partitioner backed by the write-ahead
// log in opt.WALDir. If the directory is empty a fresh partitioner is
// returned; otherwise the newest readable checkpoint is loaded and the
// log tail replayed, reconstructing the pre-crash state bit-identically —
// same placements, sizes, stats and event sequence — regardless of how
// the previous process died (see RecoveryInfo for what recovery
// tolerated). wl must be the same base workload the directory was created
// with; queries added later via AddQuery are recovered from the log and
// checkpoint, not from wl.
//
// The returned partitioner logs every ingest call before applying it, so
// its in-memory state never runs ahead of what a future Open can
// reproduce. Call Checkpoint periodically to bound replay time and let
// old log segments be pruned, and Close on shutdown.
func Open(opt Options, wl *Workload) (*Partitioner, RecoveryInfo, error) {
	return openFS(wal.OS(), opt, wl)
}

// openFS is Open over an injectable filesystem (the fault-injection tests
// recover from deterministic in-memory crash states).
func openFS(fsys wal.FS, opt Options, wl *Workload) (*Partitioner, RecoveryInfo, error) {
	var info RecoveryInfo
	nopt, err := opt.normalise()
	if err != nil {
		return nil, info, err
	}
	if nopt.WALDir == "" {
		return nil, info, fmt.Errorf("loom: Open requires Options.WALDir (use New for a non-durable partitioner)")
	}
	wlog, recd, err := wal.Open(fsys, wal.Options{
		Dir:             nopt.WALDir,
		Policy:          nopt.WALSync.internal(),
		SegmentBytes:    int64(nopt.WALSegmentBytes),
		KeepCheckpoints: nopt.WALKeepCheckpoints,
		Retries:         nopt.walRetries(),
		RetryBackoff:    nopt.WALRetryBackoff,
	})
	if err != nil {
		return nil, info, err
	}
	p, err := newLoom(nopt, wl)
	if err != nil {
		wlog.Close()
		return nil, info, err
	}
	info = RecoveryInfo{
		Recovered:          recd.HaveCheckpoint || len(recd.Records) > 0,
		CheckpointLSN:      recd.CheckpointLSN,
		ReplayedRecords:    len(recd.Records),
		LastLSN:            recd.LastLSN,
		TornTail:           recd.TornTail,
		CheckpointFallback: recd.CheckpointFallback,
		Warnings:           recd.Warnings,
	}
	// No lock needed yet — the partitioner is unshared until we return.
	if recd.HaveCheckpoint {
		if err := p.restoreCheckpoint(recd.Checkpoint); err != nil {
			wlog.Close()
			return nil, info, err
		}
	}
	for i, rec := range recd.Records {
		if err := p.applyRecordLocked(rec); err != nil {
			wlog.Close()
			return nil, info, fmt.Errorf("loom: replay record %d (LSN %d): %w", i, recd.CheckpointLSN+uint64(i)+1, err)
		}
	}
	p.publishLocked()
	p.wal = wlog
	return p, info, nil
}

// walRetries maps Options.WALAppendRetries onto the wal layer's count:
// 0 (unset) means the default 2 retries, negative disables retrying.
func (o Options) walRetries() int {
	switch {
	case o.WALAppendRetries < 0:
		return 0
	case o.WALAppendRetries == 0:
		return 2
	default:
		return o.WALAppendRetries
	}
}

// OpenFS is Open over an injectable write-ahead-log filesystem. The FS
// interface lives in an internal package, so only this module's fault
// tests and chaos harness (loom-bench -exp chaos) can construct one;
// external callers use Open, which runs on the real filesystem.
func OpenFS(fsys wal.FS, opt Options, wl *Workload) (*Partitioner, RecoveryInfo, error) {
	return openFS(fsys, opt, wl)
}

// FollowFS is Follow over an injectable filesystem; see OpenFS.
func FollowFS(fsys wal.FS, opt Options, wl *Workload) (*Follower, RecoveryInfo, error) {
	return followFS(fsys, opt, wl)
}

// DamagedSegment reports the WAL segment file an error from Follow,
// Follower.Poll or Open was attributed to, when the damage is localised
// to one segment — the name a supervisor quarantines before
// re-bootstrapping. ok is false for errors with no segment attribution
// (gaps spanning the chain, config mismatches, transient I/O elsewhere).
func DamagedSegment(err error) (name string, ok bool) {
	var se *wal.SegmentError
	if errors.As(err, &se) {
		return se.Name, true
	}
	return "", false
}

// Follower is a read-only replica of a durable partitioner: it bootstraps
// from the newest checkpoint in a live primary's WAL directory, replays
// the log tail, and then follows the primary record by record as the log
// grows — without writing a single byte to the directory (contrast Open,
// which positions a writer and truncates torn tails). This is the serving
// tier's "-follow" mode: a router replica on another machine points a
// Follower at a shipped or shared WAL directory and keeps its mirror
// consistent by polling.
//
// The wrapped Partitioner (see Partitioner method) serves every read —
// PartitionOf, Snapshot, OnPlace/Subscribe, Evaluate — but refuses direct
// ingest: state changes arrive exclusively through Poll, which applies
// newly appended primary records under the same ingest lock, emitting
// placement events exactly as the primary did. Because replay is
// bit-identical (the durability guarantee PR 7 pinned), a caught-up
// follower answers PartitionOf identically to the primary at the same log
// position.
type Follower struct {
	mu     sync.Mutex
	p      *Partitioner
	tail   *wal.Tailer
	closed bool
}

// Follow opens a read-only follower over the WAL directory in opt.WALDir.
// The directory may be owned by a live primary on the same filesystem, or
// be a shipped copy that keeps receiving segment updates; Follow never
// modifies it. wl must be the base workload the directory was created
// with, exactly as for Open. The returned RecoveryInfo describes the
// bootstrap (TornTail here means the scan stopped before an in-flight or
// torn final record — the follower picks it up on a later Poll if the
// primary completes it).
func Follow(opt Options, wl *Workload) (*Follower, RecoveryInfo, error) {
	return followFS(wal.OS(), opt, wl)
}

// followFS is Follow over an injectable filesystem.
func followFS(fsys wal.FS, opt Options, wl *Workload) (*Follower, RecoveryInfo, error) {
	var info RecoveryInfo
	nopt, err := opt.normalise()
	if err != nil {
		return nil, info, err
	}
	if nopt.WALDir == "" {
		return nil, info, fmt.Errorf("loom: Follow requires Options.WALDir (the primary's log directory)")
	}
	tail, recd, err := wal.OpenTailer(fsys, nopt.WALDir)
	if err != nil {
		return nil, info, err
	}
	p, err := newLoom(nopt, wl)
	if err != nil {
		return nil, info, err
	}
	info = RecoveryInfo{
		Recovered:          recd.HaveCheckpoint || len(recd.Records) > 0,
		CheckpointLSN:      recd.CheckpointLSN,
		ReplayedRecords:    len(recd.Records),
		LastLSN:            recd.LastLSN,
		TornTail:           recd.TornTail,
		CheckpointFallback: recd.CheckpointFallback,
		Warnings:           recd.Warnings,
	}
	if recd.HaveCheckpoint {
		if err := p.restoreCheckpoint(recd.Checkpoint); err != nil {
			return nil, info, err
		}
	}
	for i, rec := range recd.Records {
		if err := p.applyRecordLocked(rec); err != nil {
			return nil, info, fmt.Errorf("loom: replay record %d (LSN %d): %w", i, recd.CheckpointLSN+uint64(i)+1, err)
		}
	}
	p.follower = true
	p.publishLocked()
	return &Follower{p: p, tail: tail}, info, nil
}

// Partitioner returns the follower's read surface. It is safe for
// concurrent use like any Partitioner; ingest calls (AddBatch, AddEdgeE,
// Flush, AddQuery) return errors — the follower's state advances only
// through Poll.
func (f *Follower) Partitioner() *Partitioner { return f.p }

// Poll reads every record the primary has appended since the last Poll
// and applies them in log order, publishing a fresh read epoch and
// emitting placement events to subscribers exactly as the primary's own
// ingest did. It returns the number of records applied. A torn or
// in-flight final record is not an error — it is retried next Poll; an
// ErrWALGap means the primary checkpointed and pruned past the follower's
// position, which a fresh Follow (re-bootstrap from the newer checkpoint)
// resolves. Poll is safe for concurrent use with reads; concurrent Polls
// serialise.
func (f *Follower) Poll() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("loom: follower is closed")
	}
	records, err := f.tail.Poll()
	if err != nil {
		return 0, err
	}
	if len(records) == 0 {
		return 0, nil
	}
	f.p.mu.Lock()
	defer f.p.mu.Unlock()
	defer f.p.publishLocked()
	for i, rec := range records {
		if err := f.p.applyRecordLocked(rec); err != nil {
			return i, fmt.Errorf("loom: apply followed record (LSN %d): %w", f.tail.LSN()-uint64(len(records)-1-i), err)
		}
	}
	return len(records), nil
}

// LSN returns the log position the follower has applied through.
func (f *Follower) LSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tail.LSN()
}

// Close stops the follower; later Polls fail. Reads on the wrapped
// Partitioner keep working against the last applied state.
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

// Checkpoint atomically writes a full-state snapshot to the WAL
// directory, after which recovery replays only records logged past this
// point and older segments become prunable. It returns the checkpoint
// file size in bytes. Only valid on a durable partitioner (built with
// Open) whose assignment has not been replaced by Refine — a refined
// assignment is a terminal, offline artifact the streaming state cannot
// be reconstructed around.
func (p *Partitioner) Checkpoint() (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.walClosed {
		return 0, fmt.Errorf("loom: partitioner is closed")
	}
	if p.wal == nil {
		return 0, fmt.Errorf("loom: Checkpoint requires a durable partitioner (use loom.Open with Options.WALDir)")
	}
	if p.refined != nil {
		return 0, fmt.Errorf("loom: cannot checkpoint a refined assignment (Refine supersedes the streaming state)")
	}
	if p.g != nil {
		// Retry any recorded-graph edge-log spills that failed earlier: a
		// checkpoint is the natural moment to bound resident log memory
		// again. A still-failing spill is not fatal to the checkpoint —
		// the chunks simply stay resident.
		_ = p.g.Compact()
	}
	payload := p.encodeCheckpointLocked()
	n, err := p.wal.WriteCheckpoint(payload)
	if err != nil {
		err = fmt.Errorf("loom: checkpoint failed: %w", err)
		// Under DegradeToMemory a failed checkpoint means the disk is
		// still bad — the breaker stays open, ingest stays live, and the
		// caller retries later. Only FailStop latches the sticky error.
		if p.opt.WALFailure != DegradeToMemory && p.err == nil {
			p.err = err
		}
		return 0, err
	}
	if p.degraded {
		// The checkpoint captured the full in-memory state on a recovered
		// disk and the wal layer re-armed the log around it: durability is
		// restored, the breaker closes.
		p.degraded = false
		p.duraErr = nil
		p.duraLSN = 0
	}
	return n, nil
}

// DurabilityLost reports the breaker state of a durable partitioner
// running under WALFailure == DegradeToMemory. While the breaker is open
// — a log write or fsync failure exhausted its retries — ingest continues
// memory-only: err is the first log failure and lsn is the exact
// watermark of the last record the disk is guaranteed to hold (a crash
// before the next successful Checkpoint recovers state through lsn and
// nothing after it). On a fully durable partitioner both are zero. A
// successful Checkpoint on a recovered disk re-arms the log and resets
// the breaker.
func (p *Partitioner) DurabilityLost() (err error, lsn uint64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if !p.degraded {
		return nil, 0
	}
	return p.duraErr, p.duraLSN
}

// Sync forces every acknowledged ingest call to stable storage, draining
// the group-commit buffer and fsyncing the log regardless of WALSync
// policy. It is the explicit durability point between checkpoints: after
// Sync returns, a crash or kill replays everything ingested so far. On a
// non-durable partitioner Sync is a no-op. Unlike Flush it does not touch
// the streaming window.
func (p *Partitioner) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.walClosed {
		return fmt.Errorf("loom: partitioner is closed")
	}
	if p.wal == nil {
		return nil
	}
	if p.degraded {
		// Sync promises durability of every acknowledged call; with the
		// breaker open that promise cannot be kept. Not sticky: ingest is
		// healthy, only durability is degraded (see DurabilityLost).
		return fmt.Errorf("loom: durability degraded since LSN %d: %w", p.duraLSN, p.duraErr)
	}
	if err := p.wal.Sync(); err != nil {
		if p.opt.WALFailure == DegradeToMemory {
			p.degraded = true
			p.duraErr = err
			p.duraLSN = p.wal.SyncedLSN()
			return fmt.Errorf("loom: durability degraded since LSN %d: %w", p.duraLSN, p.duraErr)
		}
		err = fmt.Errorf("loom: wal sync failed: %w", err)
		if p.err == nil {
			p.err = err
		}
		return err
	}
	return nil
}

// Close syncs and closes the write-ahead log. Ingest calls after Close
// return errors; reads (Snapshot, PartitionOf, Evaluate, …) keep working.
// Close does not write a checkpoint — call Checkpoint first for a fast
// next Open. On a non-durable partitioner Close is a no-op.
func (p *Partitioner) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wal == nil {
		return nil
	}
	err := p.wal.Close()
	p.wal = nil
	p.walClosed = true
	return err
}

// --- Write-ahead records -------------------------------------------------
//
// Every mutating public call appends exactly one record before applying
// itself (log-before-apply): a batch (AddBatch, and AddEdgeE as a 1-edge
// batch), a flush, or a workload query. Replay re-applies records through
// the same locked application halves the live calls use, so every
// deterministic outcome — including dropped corrupt edges and their
// sticky errors — reproduces exactly.

const (
	recBatch uint8 = 1
	recFlush uint8 = 2
	recQuery uint8 = 3
)

// encodeBatchRecord writes the edge section first and the label string
// table after it: the table's contents are only known once every edge has
// been scanned, and this order lets a single pass encode straight into e
// with no staging buffer. The label alphabet is tiny, so index lookup is
// a linear scan, fronted by a memo of the previous edge's labels —
// streams run the same vertex types for long stretches, so the memo hits
// far more often than the scan. The labels scratch is passed in and
// returned so the caller can reuse its backing array across batches (the
// ingest path must not allocate per record: the extra garbage skews GC
// pacing inside the partitioner's hot loop).
func encodeBatchRecord(e *wal.Enc, batch []StreamEdge, labels []string) []string {
	e.U8(recBatch)
	labels = labels[:0]
	e.U32(uint32(len(batch)))
	var lastLU, lastLV string
	var lastLUi, lastLVi uint32
	for i := range batch {
		ed := &batch[i]
		if i == 0 || ed.LU != lastLU {
			lastLU = ed.LU
			lastLUi, labels = labelIndex(labels, ed.LU)
		}
		if i == 0 || ed.LV != lastLV {
			lastLV = ed.LV
			lastLVi, labels = labelIndex(labels, ed.LV)
		}
		var eb [24]byte
		binary.LittleEndian.PutUint64(eb[0:8], uint64(ed.U))
		binary.LittleEndian.PutUint64(eb[8:16], uint64(ed.V))
		binary.LittleEndian.PutUint32(eb[16:20], lastLUi)
		binary.LittleEndian.PutUint32(eb[20:24], lastLVi)
		e.B = append(e.B, eb[:]...)
	}
	e.U32(uint32(len(labels)))
	for _, l := range labels {
		e.Str(l)
	}
	return labels
}

func labelIndex(labels []string, s string) (uint32, []string) {
	for i, l := range labels {
		if l == s {
			return uint32(i), labels
		}
	}
	return uint32(len(labels)), append(labels, s)
}

func decodeBatchRecord(d *wal.Dec) ([]StreamEdge, error) {
	// Wire order is edges first, label table second (see encodeBatchRecord),
	// so indices are buffered and resolved once the table is in hand.
	batch := make([]StreamEdge, d.Len(24))
	lidx := make([]uint32, 2*len(batch))
	for i := range batch {
		batch[i].U = d.I64()
		batch[i].V = d.I64()
		lidx[2*i] = d.U32()
		lidx[2*i+1] = d.U32()
	}
	labels := make([]string, d.Len(1))
	for i := range labels {
		labels[i] = d.Str()
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	for i := range batch {
		lu, lv := lidx[2*i], lidx[2*i+1]
		if int(lu) >= len(labels) || int(lv) >= len(labels) {
			return nil, fmt.Errorf("batch record references label %d/%d beyond table of %d", lu, lv, len(labels))
		}
		batch[i].LU = labels[lu]
		batch[i].LV = labels[lv]
	}
	return batch, nil
}

func encodeQueryPayload(e *wal.Enc, name string, g *graph.Graph, freq float64) {
	e.Str(name)
	e.F64(freq)
	edges := g.Edges()
	e.U32(uint32(len(edges)))
	for _, ed := range edges {
		lu, lv := g.EdgeLabels(ed)
		e.I64(int64(ed.U))
		e.Str(string(lu))
		e.I64(int64(ed.V))
		e.Str(string(lv))
	}
}

func decodeQueryPayload(d *wal.Dec) (name string, pat *Pattern, freq float64, err error) {
	name = d.Str()
	freq = d.F64()
	g := graph.New()
	n := d.Len(22) // i64 + min str + i64 + min str
	for i := 0; i < n; i++ {
		u := d.I64()
		lu := d.Str()
		v := d.I64()
		lv := d.Str()
		if d.Err() != nil {
			break
		}
		if _, eerr := g.EnsureEdge(graph.VertexID(u), graph.Label(lu), graph.VertexID(v), graph.Label(lv)); eerr != nil {
			return "", nil, 0, fmt.Errorf("query %q edge %d: %w", name, i, eerr)
		}
	}
	if derr := d.Err(); derr != nil {
		return "", nil, 0, derr
	}
	return name, &Pattern{g: g}, freq, nil
}

// walAppendBatch logs one batch record; a nil p.wal (non-durable) is a
// no-op. On failure nothing must be applied: the returned error becomes
// the caller's, and it is retained as the sticky Err.
// errFollower rejects direct ingest into a read-only follower. It is NOT
// retained as the sticky Err: the follower's mirrored state is perfectly
// healthy, the caller just used the wrong door.
func errFollower() error {
	return fmt.Errorf("loom: read-only follower: state advances via Follower.Poll, not direct ingest")
}

func (p *Partitioner) walAppendBatch(batch []StreamEdge) error {
	if p.follower {
		return errFollower()
	}
	if p.walClosed {
		return fmt.Errorf("loom: partitioner is closed")
	}
	if p.wal == nil {
		return nil
	}
	p.walLabels = encodeBatchRecord(p.walEncReset(), batch, p.walLabels)
	return p.walAppend(p.walEnc.B)
}

func (p *Partitioner) walAppendFlush() error {
	if p.follower {
		return errFollower()
	}
	if p.walClosed {
		err := fmt.Errorf("loom: partitioner is closed")
		if p.err == nil {
			p.err = err
		}
		return err
	}
	if p.wal == nil {
		return nil
	}
	p.walEncReset().U8(recFlush)
	return p.walAppend(p.walEnc.B)
}

func (p *Partitioner) walAppendQuery(name string, pat *Pattern, freq float64) error {
	if p.follower {
		return errFollower()
	}
	if p.walClosed {
		return fmt.Errorf("loom: partitioner is closed")
	}
	if p.wal == nil {
		return nil
	}
	e := p.walEncReset()
	e.U8(recQuery)
	encodeQueryPayload(e, name, pat.g, freq)
	return p.walAppend(p.walEnc.B)
}

// walEncReset clears the record encode buffer and reserves the eight
// bytes Log.AppendFramed overwrites with the record frame.
func (p *Partitioner) walEncReset() *wal.Enc {
	p.walEnc.B = append(p.walEnc.B[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	return &p.walEnc
}

// walAppend hands the framed record buffer (walEncReset + payload) to the
// log. On failure, WALFailure decides: FailStop sets the sticky error and
// nothing may be applied; DegradeToMemory trips the breaker — the record
// is dropped, the operation applies anyway, and ingest runs memory-only
// until a successful Checkpoint re-arms the log.
func (p *Partitioner) walAppend(framed []byte) error {
	if p.degraded {
		return nil // breaker open: memory-only until Checkpoint re-arms
	}
	_, err := p.wal.AppendFramed(framed)
	if err == nil {
		return nil
	}
	if p.opt.WALFailure == DegradeToMemory {
		p.degraded = true
		p.duraErr = err
		p.duraLSN = p.wal.SyncedLSN()
		return nil
	}
	err = fmt.Errorf("loom: wal append failed, operation not applied: %w", err)
	if p.err == nil {
		p.err = err
	}
	return err
}

// applyRecordLocked decodes and applies one replayed record. Decoding is
// completed (and validated) before anything is applied, so a undecodable
// record — CRC-intact but semantically short, i.e. version skew — cannot
// half-apply.
func (p *Partitioner) applyRecordLocked(payload []byte) error {
	d := wal.NewDec(payload)
	switch typ := d.U8(); typ {
	case recBatch:
		batch, err := decodeBatchRecord(d)
		if err != nil {
			return fmt.Errorf("decode batch record: %w", err)
		}
		// Per-record errors (corrupt edges) were already sticky in the
		// run that logged them and re-latch identically here.
		_ = p.applyBatchLocked(batch)
		return nil
	case recFlush:
		if err := d.Err(); err != nil {
			return err
		}
		p.streamer.Flush()
		return nil
	case recQuery:
		name, pat, freq, err := decodeQueryPayload(d)
		if err != nil {
			return fmt.Errorf("decode query record: %w", err)
		}
		// A query that failed validation when logged fails identically.
		_ = p.applyQueryLocked(name, pat, freq)
		return nil
	default:
		return fmt.Errorf("unknown record type %d", typ)
	}
}

// --- Checkpoint payload --------------------------------------------------
//
// The checkpoint is the full partitioner state in one CRC-framed payload:
// meta (event seq, subscription flag, sticky error), the placement-shaping
// config fingerprint, the workload (base fingerprint + AddQuery tail),
// a trie identity check, the signature scheme's label r-values (assigned
// in first-use order, so stream-history-dependent — see
// signature.SchemeState), the shared intern tables, the tracker, the core
// counters and label cache, the complete window matcher state, and the
// recorded graph. Restore rebuilds each layer through its own state hook
// and validates every cross-reference; the trie itself is never
// serialised — it is rebuilt deterministically from the base workload plus
// the query tail, which reproduces every node ID the window state refers
// to.

func (p *Partitioner) encodeCheckpointLocked() []byte {
	var e wal.Enc
	// Meta.
	e.U64(p.seq)
	e.Bool(p.evHooked)
	e.Bool(p.err != nil)
	if p.err != nil {
		e.Str(p.err.Error())
	}
	// Config fingerprint (normalised values; Workers excluded).
	e.I64(int64(p.opt.Partitions))
	e.I64(int64(p.opt.ExpectedVertices))
	e.I64(int64(p.opt.ExpectedEdges))
	e.I64(int64(p.opt.WindowSize))
	e.F64(p.opt.SupportThreshold)
	e.F64(p.opt.Alpha)
	e.F64(p.opt.MaxImbalance)
	e.U32(p.opt.SignaturePrime)
	e.I64(p.opt.Seed)
	e.Bool(p.opt.DisableGraphRecording)
	// Workload: base fingerprint + replayable AddQuery tail.
	e.U32(uint32(p.baseQueries))
	e.U32(p.baseWorkloadCRC())
	e.U32(uint32(len(p.added)))
	for _, q := range p.added {
		encodeQueryPayload(&e, q.name, q.pat.g, q.freq)
	}
	// Trie identity check (validated after the rebuild on restore).
	e.I64(int64(p.trie.Size()))
	e.I64(int64(p.trie.Version()))
	e.F64(p.trie.TotalWeight())
	// Signature scheme: r-values are drawn in label first-use order, so
	// they depend on the stream history, not just (prime, seed). Restore
	// must install these before rebuilding the query tail or the window —
	// and fast-forward the generator so post-checkpoint labels draw the
	// same values the uninterrupted run drew.
	ss := p.trie.Scheme().CaptureState()
	e.U32(uint32(len(ss.Labels)))
	for i := range ss.Labels {
		e.Str(string(ss.Labels[i]))
		e.U32(ss.Values[i])
	}
	e.U32(uint32(ss.Draws))
	// Shared intern tables, in dense/code order.
	win := p.loom.Window()
	ids := win.Verts().IDs()
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.I64(id)
	}
	names := win.Labels().Names()
	e.U32(uint32(len(names)))
	for _, n := range names {
		e.Str(n)
	}
	// Tracker.
	ts := p.tr.CaptureState()
	e.U32(uint32(len(ts.Parts)))
	for _, part := range ts.Parts {
		e.I64(int64(part))
	}
	for _, row := range ts.Nbrs {
		e.U32(uint32(len(row)))
		for _, u := range row {
			e.U32(u)
		}
	}
	e.U32(uint32(len(ts.Cnt)))
	for _, c := range ts.Cnt {
		e.U32(uint32(c))
	}
	e.I64(int64(ts.Observed))
	// Core counters + label-code cache.
	cs := p.loom.CaptureState()
	st := cs.Stats
	for _, v := range []int{
		st.EdgesProcessed, st.SelfLoops, st.DuplicateEdges, st.ImmediateEdges,
		st.WindowedEdges, st.Evictions, st.MatchesAssigned, st.ZeroBidRounds,
		st.LoneEdgeRounds, st.DeferredEndpoints, st.PriorPlacements,
	} {
		e.I64(int64(v))
	}
	e.U32(uint32(len(cs.VLab)))
	for _, c := range cs.VLab {
		e.I64(int64(c))
	}
	// Window matcher.
	ws := win.CaptureState()
	e.U64(ws.Seq)
	e.U64(ws.MSeq)
	e.U32(uint32(len(ws.VCode)))
	for i := range ws.VCode {
		e.Bool(ws.Labelled[i])
		e.U16(ws.VCode[i])
	}
	e.U32(uint32(len(ws.Edges)))
	for _, es := range ws.Edges {
		e.U32(es.E.U)
		e.U32(es.E.V)
		e.U64(es.Seq)
	}
	e.U32(uint32(len(ws.Matches)))
	for _, ms := range ws.Matches {
		e.I64(int64(ms.NodeID))
		e.U64(ms.Seq)
		e.U32(uint32(len(ms.IEdges)))
		for _, ie := range ms.IEdges {
			e.U32(ie.U)
			e.U32(ie.V)
		}
	}
	// Recorded graph: the full vertex list (EnsureEdge interns labelled
	// endpoints even for self-loops that never become edges, and future
	// label-conflict detection depends on them) plus the accepted-edge
	// log, each against a local label table.
	e.Bool(p.g != nil)
	if p.g != nil {
		var labels []string
		idx := func(s graph.Label) uint32 {
			for i, l := range labels {
				if l == string(s) {
					return uint32(i)
				}
			}
			labels = append(labels, string(s))
			return uint32(len(labels) - 1)
		}
		verts := p.g.Vertices()
		for _, v := range verts {
			l, _ := p.g.Label(v)
			idx(l)
		}
		// The accepted-edge log is replayed straight out of the graph's
		// compressed edge log (including spilled chunks) — it is never
		// materialised as a slice. Edge labels are always vertex labels,
		// so the label table is already complete after the vertex walk.
		rec := p.g.CaptureReplay()
		e.U32(uint32(len(labels)))
		for _, l := range labels {
			e.Str(l)
		}
		e.U32(uint32(len(verts)))
		for _, v := range verts {
			l, _ := p.g.Label(v)
			e.I64(int64(v))
			e.U32(idx(l))
		}
		e.U32(uint32(rec.NumEdges()))
		err := rec.Each(func(se graph.StreamEdge) error {
			e.I64(int64(se.U))
			e.U32(idx(se.LU))
			e.I64(int64(se.V))
			e.U32(idx(se.LV))
			return nil
		})
		if err != nil {
			// A spilled chunk could not be read back. The log is the
			// durable source for the recorded graph; encoding a
			// checkpoint that silently drops edges would corrupt every
			// later recovery, so fail loudly.
			panic(fmt.Sprintf("loom: checkpoint: %v", err))
		}
	}
	return e.B
}

// baseWorkloadCRC fingerprints the construction-time workload (the first
// baseQueries entries): Open must be handed the exact workload the
// checkpoint was built against, or the rebuilt trie — and with it every
// node ID and placement decision — would silently diverge.
func (p *Partitioner) baseWorkloadCRC() uint32 {
	var e wal.Enc
	for _, q := range p.wl.queries[:p.baseQueries] {
		encodeQueryPayload(&e, q.Name, q.Pattern, q.Freq)
	}
	return wal.Checksum(e.B)
}

func (p *Partitioner) restoreCheckpoint(payload []byte) error {
	d := wal.NewDec(payload)
	fail := func(what string, err error) error {
		return fmt.Errorf("loom: checkpoint %s: %w", what, err)
	}

	// Meta.
	seq := d.U64()
	hooked := d.Bool()
	var errMsg string
	hasErr := d.Bool()
	if hasErr {
		errMsg = d.Str()
	}

	// Config fingerprint vs the options Open was given.
	type cfgField struct {
		name string
		want string
		got  string
	}
	var mismatches []cfgField
	cmpI := func(name string, got int64) {
		if want := d.I64(); want != got {
			mismatches = append(mismatches, cfgField{name, fmt.Sprint(want), fmt.Sprint(got)})
		}
	}
	cmpF := func(name string, got float64) {
		if want := d.F64(); want != got {
			mismatches = append(mismatches, cfgField{name, fmt.Sprint(want), fmt.Sprint(got)})
		}
	}
	cmpI("Partitions", int64(p.opt.Partitions))
	cmpI("ExpectedVertices", int64(p.opt.ExpectedVertices))
	cmpI("ExpectedEdges", int64(p.opt.ExpectedEdges))
	cmpI("WindowSize", int64(p.opt.WindowSize))
	cmpF("SupportThreshold", p.opt.SupportThreshold)
	cmpF("Alpha", p.opt.Alpha)
	cmpF("MaxImbalance", p.opt.MaxImbalance)
	if want := d.U32(); want != p.opt.SignaturePrime {
		mismatches = append(mismatches, cfgField{"SignaturePrime", fmt.Sprint(want), fmt.Sprint(p.opt.SignaturePrime)})
	}
	cmpI("Seed", p.opt.Seed)
	if want := d.Bool(); want != p.opt.DisableGraphRecording {
		mismatches = append(mismatches, cfgField{"DisableGraphRecording", fmt.Sprint(want), fmt.Sprint(p.opt.DisableGraphRecording)})
	}

	// Workload base fingerprint + query tail.
	baseCount := int(d.U32())
	baseCRC := d.U32()
	tailN := d.Len(1)
	type tailQ struct {
		name string
		pat  *Pattern
		freq float64
	}
	tail := make([]tailQ, 0, tailN)
	for i := 0; i < tailN; i++ {
		name, pat, freq, err := decodeQueryPayload(d)
		if err != nil {
			return fail("query tail", err)
		}
		tail = append(tail, tailQ{name, pat, freq})
	}

	trieSize := int(d.I64())
	trieVersion := int(d.I64())
	trieWeight := d.F64()

	var ss signature.SchemeState
	ss.Labels = make([]graph.Label, d.Len(5))
	ss.Values = make([]uint32, len(ss.Labels))
	for i := range ss.Labels {
		ss.Labels[i] = graph.Label(d.Str())
		ss.Values[i] = d.U32()
	}
	ss.Draws = int(d.U32())

	ids := make([]int64, d.Len(8))
	for i := range ids {
		ids[i] = d.I64()
	}
	labelNames := make([]string, d.Len(4))
	for i := range labelNames {
		labelNames[i] = d.Str()
	}

	var ts partition.TrackerState
	ts.Parts = make([]partition.ID, d.Len(8))
	for i := range ts.Parts {
		ts.Parts[i] = partition.ID(d.I64())
	}
	ts.Nbrs = make([][]uint32, len(ts.Parts))
	for i := range ts.Nbrs {
		row := make([]uint32, d.Len(4))
		for j := range row {
			row[j] = d.U32()
		}
		ts.Nbrs[i] = row
	}
	ts.Cnt = make([]int32, d.Len(4))
	for i := range ts.Cnt {
		ts.Cnt[i] = int32(d.U32())
	}
	ts.Observed = int(d.I64())

	var cs core.State
	for _, f := range []*int{
		&cs.Stats.EdgesProcessed, &cs.Stats.SelfLoops, &cs.Stats.DuplicateEdges,
		&cs.Stats.ImmediateEdges, &cs.Stats.WindowedEdges, &cs.Stats.Evictions,
		&cs.Stats.MatchesAssigned, &cs.Stats.ZeroBidRounds, &cs.Stats.LoneEdgeRounds,
		&cs.Stats.DeferredEndpoints, &cs.Stats.PriorPlacements,
	} {
		*f = int(d.I64())
	}
	cs.VLab = make([]int32, d.Len(8))
	for i := range cs.VLab {
		cs.VLab[i] = int32(d.I64())
	}

	var ws window.MatcherState
	ws.Seq = d.U64()
	ws.MSeq = d.U64()
	nv := d.Len(3)
	ws.Labelled = make([]bool, nv)
	ws.VCode = make([]uint16, nv)
	for i := 0; i < nv; i++ {
		ws.Labelled[i] = d.Bool()
		ws.VCode[i] = d.U16()
	}
	ws.Edges = make([]window.EdgeState, d.Len(16))
	for i := range ws.Edges {
		ws.Edges[i].E.U = d.U32()
		ws.Edges[i].E.V = d.U32()
		ws.Edges[i].Seq = d.U64()
	}
	ws.Matches = make([]window.MatchState, d.Len(20))
	for i := range ws.Matches {
		ws.Matches[i].NodeID = int(d.I64())
		ws.Matches[i].Seq = d.U64()
		ie := make([]window.IEdge, d.Len(8))
		for j := range ie {
			ie[j].U = d.U32()
			ie[j].V = d.U32()
		}
		ws.Matches[i].IEdges = ie
	}

	hasGraph := d.Bool()
	type gvert struct {
		id    int64
		label uint32
	}
	var glabels []string
	var gverts []gvert
	var gedges []graph.StreamEdge
	if hasGraph {
		glabels = make([]string, d.Len(4))
		for i := range glabels {
			glabels[i] = d.Str()
		}
		gverts = make([]gvert, d.Len(12))
		for i := range gverts {
			gverts[i] = gvert{id: d.I64(), label: d.U32()}
		}
		gedges = make([]graph.StreamEdge, d.Len(24))
		glab := func(i uint32) (graph.Label, error) {
			if int(i) >= len(glabels) {
				return "", fmt.Errorf("label index %d beyond table of %d", i, len(glabels))
			}
			return graph.Label(glabels[i]), nil
		}
		for i := range gedges {
			u := d.I64()
			lu := d.U32()
			v := d.I64()
			lv := d.U32()
			lul, err := glab(lu)
			if err != nil {
				return fail("recorded edge", err)
			}
			lvl, err := glab(lv)
			if err != nil {
				return fail("recorded edge", err)
			}
			gedges[i] = graph.StreamEdge{U: graph.VertexID(u), LU: lul, V: graph.VertexID(v), LV: lvl}
		}
	}

	// Everything decoded; one truncation check before any state mutates.
	if err := d.Err(); err != nil {
		return fail("decode", err)
	}
	if len(mismatches) > 0 {
		m := mismatches[0]
		return fmt.Errorf("loom: checkpoint %s is %s but Open was given %s (%d mismatching fields): %w",
			m.name, m.want, m.got, len(mismatches), ErrWALConfig)
	}
	if baseCount != p.baseQueries {
		return fmt.Errorf("loom: checkpoint base workload has %d queries but Open was given %d: %w",
			baseCount, p.baseQueries, ErrWALConfig)
	}
	if got := p.baseWorkloadCRC(); got != baseCRC {
		return fmt.Errorf("loom: base workload fingerprint %08x does not match checkpoint %08x: %w",
			got, baseCRC, ErrWALConfig)
	}
	if hasGraph != (p.g != nil) {
		return fail("graph section", fmt.Errorf("presence %v does not match options", hasGraph))
	}

	// Apply, bottom-up. Order matters: the signature scheme before the
	// query tail (AddQuery computes trie deltas through it — a tail query
	// whose labels the primary first met mid-stream must see the primary's
	// r-values, not fresh draws); intern tables before anything that
	// indexes by dense vertex; the trie's query tail before the window's
	// matches (which reference the rebuilt nodes by ID).
	if err := p.trie.Scheme().RestoreState(ss); err != nil {
		return fail("signature scheme", err)
	}
	for _, q := range tail {
		if err := p.applyQueryLocked(q.name, q.pat, q.freq); err != nil {
			return fail("query tail", err)
		}
	}
	if p.trie.Size() != trieSize || p.trie.Version() != trieVersion || p.trie.TotalWeight() != trieWeight {
		return fail("trie identity", fmt.Errorf("rebuilt trie (size %d, version %d, weight %g) does not match checkpoint (size %d, version %d, weight %g)",
			p.trie.Size(), p.trie.Version(), p.trie.TotalWeight(), trieSize, trieVersion, trieWeight))
	}
	win := p.loom.Window()
	if err := win.Verts().RestoreIDs(ids); err != nil {
		return fail("vertex table", err)
	}
	if err := win.Labels().RestoreNames(labelNames); err != nil {
		return fail("label table", err)
	}
	if err := p.tr.RestoreState(ts); err != nil {
		return fail("tracker", err)
	}
	if err := p.loom.RestoreState(cs); err != nil {
		return fail("core", err)
	}
	nodeByID := make(map[int]*tpstry.Node, p.trie.Size())
	for _, n := range p.trie.Nodes() {
		nodeByID[n.ID] = n
	}
	if err := win.RestoreState(ws, nodeByID); err != nil {
		return fail("window", err)
	}
	if p.g != nil {
		for _, v := range gverts {
			if int(v.label) >= len(glabels) {
				return fail("recorded vertex", fmt.Errorf("label index %d beyond table of %d", v.label, len(glabels)))
			}
			if err := p.g.AddVertex(graph.VertexID(v.id), graph.Label(glabels[v.label])); err != nil {
				return fail("recorded vertex", err)
			}
		}
		for i := range gedges {
			ge := &gedges[i]
			added, err := p.g.EnsureEdge(ge.U, ge.LU, ge.V, ge.LV)
			if err != nil {
				return fail("recorded edge", err)
			}
			if !added {
				return fail("recorded edge", fmt.Errorf("duplicate edge %v-%v in accepted-edge log", ge.U, ge.V))
			}
		}
	}
	p.seq = seq
	if hasErr {
		p.err = errors.New(errMsg)
	}
	if hooked {
		p.installEventHooksLocked()
	}
	return nil
}
