module loom

go 1.24
