package loom_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"loom"
)

// Tests for the stage-parallel AddBatch pipeline (Options.Workers > 1):
// golden bit-identity with single-threaded replay on the ipt dataset
// fixtures, event-stream equivalence, sticky-error semantics through the
// parallel validate path, and multi-producer ingest under the race
// detector.

// parallelFixture returns one dataset's workload and bfs-ordered stream —
// the same fixtures the ipt golden tests replay.
func parallelFixture(t testing.TB, dataset string, scale int) (*loom.Workload, []loom.StreamEdge) {
	t.Helper()
	wl, err := loom.DatasetWorkload(dataset)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := loom.GenerateDataset(dataset, scale, 3)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := loom.OrderStream(edges, "bfs", 5)
	if err != nil {
		t.Fatal(err)
	}
	return wl, ordered
}

// ingestBatches feeds the stream via AddBatch in fixed-size chunks and
// flushes.
func ingestBatches(t testing.TB, p *loom.Partitioner, edges []loom.StreamEdge, batch int) {
	t.Helper()
	for _, b := range chunk(edges, batch) {
		if err := p.AddBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
}

// TestAddBatchParallelGolden: for workers ∈ {2, 4, 8}, parallel AddBatch
// must produce placements, sizes and stats bit-identical to the workers=1
// sequential replay, on both an immediate-heavy and a motif-heavy fixture.
// Runs under -race in CI.
func TestAddBatchParallelGolden(t *testing.T) {
	for _, dataset := range []string{"provgen", "musicbrainz"} {
		wl, edges := parallelFixture(t, dataset, 1500)
		n := distinctVertices(edges)
		opt := loom.Options{Partitions: 4, ExpectedVertices: n, WindowSize: 128, Workers: 1}
		seq, err := loom.New(opt, wl)
		if err != nil {
			t.Fatal(err)
		}
		ingestBatches(t, seq, edges, 211)
		want := seq.Assignments()
		wantStats := seq.Stats()
		wantSizes := seq.Sizes()

		for _, workers := range []int{2, 4, 8} {
			popt := opt
			popt.Workers = workers
			par, err := loom.New(popt, wl)
			if err != nil {
				t.Fatal(err)
			}
			ingestBatches(t, par, edges, 211)
			label := fmt.Sprintf("%s workers=%d", dataset, workers)
			if got := par.Stats(); got != wantStats {
				t.Fatalf("%s: stats diverged:\nwant %+v\ngot  %+v", label, wantStats, got)
			}
			for i, s := range par.Sizes() {
				if s != wantSizes[i] {
					t.Fatalf("%s: partition %d size %d, want %d", label, i, s, wantSizes[i])
				}
			}
			got := par.Assignments()
			if len(got) != len(want) {
				t.Fatalf("%s: %d assigned, want %d", label, len(got), len(want))
			}
			for v, part := range want {
				if got[v] != part {
					t.Fatalf("%s: vertex %d placed in %d, want %d", label, v, got[v], part)
				}
			}
		}
	}
}

// TestAddBatchParallelEvents: the placement-event feed (order, sequence
// numbers, payloads) must be identical between sequential and parallel
// ingest — a query router mirroring either sees the same history.
func TestAddBatchParallelEvents(t *testing.T) {
	wl, edges := parallelFixture(t, "provgen", 1200)
	n := distinctVertices(edges)
	run := func(workers int) []loom.PlacementEvent {
		p, err := loom.New(loom.Options{
			Partitions: 4, ExpectedVertices: n, WindowSize: 64, Workers: workers,
		}, wl)
		if err != nil {
			t.Fatal(err)
		}
		var events []loom.PlacementEvent
		p.OnPlace(func(ev loom.PlacementEvent) { events = append(events, ev) })
		ingestBatches(t, p, edges, 137)
		return events
	}
	want := run(1)
	got := run(4)
	if len(got) != len(want) {
		t.Fatalf("%d events parallel, %d sequential", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d diverged: parallel %+v, sequential %+v", i, got[i], want[i])
		}
	}
}

// TestAddBatchParallelStickyErrors: corrupt edges inside a large batch
// must be dropped by the parallel validate pass with the same returned
// error, sticky Err and surviving placements as the sequential path.
func TestAddBatchParallelStickyErrors(t *testing.T) {
	wl := loom.NewWorkload("social")
	wl.Add("fof", loom.Path("person", "person", "person"), 1.0)

	build := func(workers int) *loom.Partitioner {
		p, err := loom.New(loom.Options{
			Partitions: 2, ExpectedVertices: 512, WindowSize: 16, Workers: workers,
		}, wl)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// A batch well past the parallel threshold with two corrupt edges.
	var batch []loom.StreamEdge
	for i := int64(0); i < 256; i++ {
		batch = append(batch, loom.StreamEdge{U: i, LU: "person", V: i + 1, LV: "person"})
	}
	batch[100] = loom.StreamEdge{U: 7, LU: "city", V: 300, LV: "person"}  // vertex 7 relabelled
	batch[200] = loom.StreamEdge{U: 301, LU: "person", V: 9, LV: "venue"} // vertex 9 relabelled

	seq := build(1)
	seqErr := seq.AddBatch(batch)
	seq.Flush()

	par := build(4)
	parErr := par.AddBatch(batch)
	par.Flush()

	if seqErr == nil || parErr == nil {
		t.Fatalf("want errors from both paths, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("first batch error diverged:\nseq %v\npar %v", seqErr, parErr)
	}
	if !strings.Contains(parErr.Error(), "label") {
		t.Errorf("error should describe the conflict, got %v", parErr)
	}
	if got := par.Err(); got == nil || got.Error() != parErr.Error() {
		t.Errorf("sticky Err() = %v, want %v", got, parErr)
	}
	want, got := seq.Assignments(), par.Assignments()
	if len(want) != len(got) {
		t.Fatalf("%d assigned sequential vs %d parallel", len(want), len(got))
	}
	for v, part := range want {
		if got[v] != part {
			t.Fatalf("vertex %d placed in %d parallel, %d sequential", v, got[v], part)
		}
	}
	// The corrupt edges' fresh endpoints must not have been placed.
	for _, v := range []int64{300, 301} {
		if _, ok := par.PartitionOf(v); ok {
			t.Errorf("vertex %d from a dropped edge was placed", v)
		}
	}
}

// TestAddBatchParallelConcurrentProducers: N producers feeding a Workers>1
// partitioner while readers snapshot — the pipeline must stay inside the
// ingest lock's exclusion. Run under -race in CI.
func TestAddBatchParallelConcurrentProducers(t *testing.T) {
	wl, edges := parallelFixture(t, "provgen", 1500)
	n := distinctVertices(edges)
	p, err := loom.New(loom.Options{
		Partitions: 4, ExpectedVertices: n, WindowSize: 128, Workers: 4,
	}, wl)
	if err != nil {
		t.Fatal(err)
	}

	const producers = 4
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []loom.StreamEdge
			for i := w; i < len(edges); i += producers {
				mine = append(mine, edges[i])
			}
			for _, b := range chunk(mine, 97) {
				if err := p.AddBatch(b); err != nil {
					t.Errorf("producer %d: %v", w, err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			snap := p.Snapshot()
			total := 0
			for _, s := range snap.Sizes() {
				total += s
			}
			if total != snap.NumAssigned() {
				t.Errorf("snapshot sizes sum %d != assigned %d", total, snap.NumAssigned())
				return
			}
			p.PartitionOf(edges[0].U)
			p.Stats()
		}
	}()
	wg.Wait()
	close(done)
	readers.Wait()
	p.Flush()

	if err := p.Err(); err != nil {
		t.Fatalf("ingest error: %v", err)
	}
	if got := p.Snapshot().NumAssigned(); got != n {
		t.Fatalf("assigned %d of %d vertices", got, n)
	}
}

// TestOptionsWorkersValidation: the public knob rejects negatives and
// defaults 0 to GOMAXPROCS.
func TestOptionsWorkersValidation(t *testing.T) {
	wl := loom.NewWorkload("w")
	wl.Add("q", loom.Path("a", "b"), 1.0)
	if _, err := loom.New(loom.Options{Partitions: 2, ExpectedVertices: 8, Workers: -2}, wl); err == nil {
		t.Error("Workers=-2: want error")
	}
	if _, err := loom.New(loom.Options{Partitions: 2, ExpectedVertices: 8}, wl); err != nil {
		t.Errorf("Workers=0 (default): %v", err)
	}
	if _, err := loom.NewBaseline("ldg", loom.Options{Partitions: 2, ExpectedVertices: 8, Workers: 8}, nil); err != nil {
		t.Errorf("baseline with Workers set: %v", err)
	}
}
