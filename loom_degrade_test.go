package loom

// Durability-degradation tests (self-healing serving tier): a primary
// whose disk starts bouncing fsyncs must not brick ingest when the
// operator opted into DegradeToMemory — placements keep flowing, the
// exact durability watermark is reported, and a checkpoint on a
// recovered disk re-arms the log.

import (
	"errors"
	"testing"

	"loom/internal/wal"
)

// ingestSingly streams edges one record per call so LSNs map 1:1 onto
// edges and the durability watermark is exact.
func ingestSingly(t *testing.T, p *Partitioner, edges []StreamEdge) {
	t.Helper()
	for i := range edges {
		if err := p.AddBatch(edges[i : i+1]); err != nil {
			t.Fatalf("AddBatch edge %d: %v", i, err)
		}
	}
}

func TestDegradeToMemoryKeepsIngestLive(t *testing.T) {
	wl, edges, opt := faultStream(t)
	opt.WALFailure = DegradeToMemory
	opt.WALAppendRetries = -1 // no retries: the first failure trips the breaker
	fs := wal.NewMemFS()
	p, _, err := openFS(fs, opt, wl)
	if err != nil {
		t.Fatalf("openFS: %v", err)
	}

	ingestSingly(t, p, edges[:40])
	if err, lsn := p.DurabilityLost(); err != nil || lsn != 0 {
		t.Fatalf("healthy partitioner reports durability loss: %v @ %d", err, lsn)
	}

	// The disk starts bouncing every segment fsync. Ingest must keep
	// accepting — the breaker trips on the first failed append.
	fs.SetSyncFault(".seg", -1, nil)
	ingestSingly(t, p, edges[40:80])

	derr, lsn := p.DurabilityLost()
	if derr == nil {
		t.Fatal("DurabilityLost reports nothing after fsync failures")
	}
	// 40 single-edge records were durable under WALSyncAlways before the
	// fault: the watermark is exactly LSN 40.
	if lsn != 40 {
		t.Fatalf("durability watermark LSN = %d, want exactly 40", lsn)
	}
	if err := p.Sync(); err == nil {
		t.Fatal("Sync on a degraded partitioner did not error")
	}
	if n := p.Snapshot().NumAssigned(); n == 0 {
		t.Fatal("no placements despite in-memory ingest")
	}

	// Disk recovers: a checkpoint persists the full in-memory state
	// (superseding the torn tail), re-arms the log and closes the
	// breaker.
	fs.SetSyncFault("", 0, nil)
	if _, err := p.Checkpoint(); err != nil {
		t.Fatalf("re-arming Checkpoint: %v", err)
	}
	if err, lsn := p.DurabilityLost(); err != nil || lsn != 0 {
		t.Fatalf("breaker still tripped after checkpoint: %v @ %d", err, lsn)
	}
	ingestSingly(t, p, edges[80:])
	if err := p.Sync(); err != nil {
		t.Fatalf("Sync after re-arm: %v", err)
	}
	want := faultHash(p)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Recovery over the re-armed directory reproduces the complete
	// stream — including the records that were never individually
	// durable, which the checkpoint carried.
	p2, info, err := openFS(fs, opt, wl)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()
	if !info.Recovered {
		t.Fatalf("nothing recovered: %+v", info)
	}
	if got := faultHash(p2); got != want {
		t.Fatalf("recovered state hash %x != pre-close %x", got, want)
	}
}

func TestFailStopPolicyStopsIngest(t *testing.T) {
	wl, edges, opt := faultStream(t) // default policy: FailStop
	opt.WALAppendRetries = -1
	fs := wal.NewMemFS()
	p, _, err := openFS(fs, opt, wl)
	if err != nil {
		t.Fatalf("openFS: %v", err)
	}
	defer p.Close()

	ingestSingly(t, p, edges[:10])
	fs.SetSyncFault(".seg", -1, nil)
	if err := p.AddBatch(edges[10:11]); err == nil {
		t.Fatal("FailStop accepted an append the WAL rejected")
	}
	// The failure is sticky: later ingest refuses even if the disk heals,
	// because the rejected operation was never applied.
	fs.SetSyncFault("", 0, nil)
	if err := p.AddBatch(edges[11:12]); err == nil {
		t.Fatal("FailStop partitioner kept ingesting after a lost write")
	}
	if err, _ := p.DurabilityLost(); err != nil {
		t.Fatalf("FailStop reports DurabilityLost (its state never diverges): %v", err)
	}
}

func TestWALAppendRetriesAbsorbTransients(t *testing.T) {
	wl, edges, opt := faultStream(t) // FailStop + default 2 retries
	fs := wal.NewMemFS()
	p, _, err := openFS(fs, opt, wl)
	if err != nil {
		t.Fatalf("openFS: %v", err)
	}

	ingestSingly(t, p, edges[:20])
	// One bounced fsync, then healthy: the retry inside the wal layer
	// absorbs it without surfacing anything.
	fs.SetSyncFault(".seg", 1, errors.New("eio"))
	ingestSingly(t, p, edges[20:40])
	if err := p.Sync(); err != nil {
		t.Fatalf("Sync after absorbed transient: %v", err)
	}
	if err, lsn := p.DurabilityLost(); err != nil || lsn != 0 {
		t.Fatalf("absorbed transient tripped the breaker: %v @ %d", err, lsn)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	p2, _, err := openFS(fs, opt, wl)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()
	if got := p2.Snapshot().NumAssigned(); got != p.Snapshot().NumAssigned() {
		t.Fatalf("recovered %d placements, want %d", got, p.Snapshot().NumAssigned())
	}
}
