package loom

import (
	"sync"
	"testing"
)

// eventLog collects placement events under its own lock (handlers run on
// the ingesting goroutines, under the partitioner's ingest lock).
type eventLog struct {
	mu  sync.Mutex
	evs []PlacementEvent
}

func (l *eventLog) add(ev PlacementEvent) {
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

func (l *eventLog) events() []PlacementEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]PlacementEvent(nil), l.evs...)
}

// TestSubscribeMidStream pins the resume-point contract Subscribe
// documents — the spec a router mirror's gap detection holds onto:
//
//  1. the returned firstSeq is exactly the Seq of the next event emitted;
//  2. the subscriber sees every event with Seq >= firstSeq, exactly once,
//     in order, with no holes;
//  3. a Snapshot taken after Subscribe covers every placement whose event
//     predates firstSeq, so (snapshot, events from firstSeq) is a
//     complete view of the final assignment.
func TestSubscribeMidStream(t *testing.T) {
	wl, err := DatasetWorkload("dblp")
	if err != nil {
		t.Fatalf("DatasetWorkload: %v", err)
	}
	p, err := New(Options{Partitions: 4, ExpectedVertices: 4000, WindowSize: 256}, wl)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	edges, err := GenerateDataset("dblp", 3000, 9)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}

	// A baseline subscriber from Seq 0 records the full feed.
	full := &eventLog{}
	if first := p.Subscribe(full.add); first != 0 {
		t.Fatalf("fresh partitioner Subscribe returned firstSeq %d, want 0", first)
	}

	// Ingest half the stream, then subscribe mid-stream.
	half := len(edges) / 2
	const batch = 128
	for i := 0; i < half; i += batch {
		end := min(i+batch, half)
		if err := p.AddBatch(edges[i:end]); err != nil {
			t.Fatalf("AddBatch: %v", err)
		}
	}
	late := &eventLog{}
	firstSeq := p.Subscribe(late.add)
	snap := p.Snapshot() // taken after Subscribe: covers every Seq < firstSeq
	for i := half; i < len(edges); i += batch {
		end := min(i+batch, len(edges))
		if err := p.AddBatch(edges[i:end]); err != nil {
			t.Fatalf("AddBatch: %v", err)
		}
	}
	p.Flush()

	fullEvs, lateEvs := full.events(), late.events()
	if len(fullEvs) == 0 || len(lateEvs) == 0 {
		t.Fatalf("no events recorded: full %d, late %d", len(fullEvs), len(lateEvs))
	}

	// (1) firstSeq is well-defined: it continues the dense sequence — the
	// event before the subscription has Seq firstSeq-1, the first event
	// the late subscriber sees has Seq exactly firstSeq.
	if firstSeq == 0 {
		t.Fatal("mid-stream Subscribe returned firstSeq 0; ingest had already emitted events")
	}
	if got := lateEvs[0].Seq; got != firstSeq {
		t.Fatalf("late subscriber's first event has Seq %d, want firstSeq %d", got, firstSeq)
	}

	// (2) exactly once, in order, dense — for both subscribers.
	for i, ev := range fullEvs {
		if ev.Seq != uint64(i) {
			t.Fatalf("full feed event %d has Seq %d: not dense from 0", i, ev.Seq)
		}
	}
	for i, ev := range lateEvs {
		if want := firstSeq + uint64(i); ev.Seq != want {
			t.Fatalf("late feed event %d has Seq %d, want %d: not dense from firstSeq", i, ev.Seq, want)
		}
	}
	// The late subscriber saw exactly the suffix of the full feed.
	if want := len(fullEvs) - int(firstSeq); len(lateEvs) != want {
		t.Fatalf("late subscriber saw %d events, want the %d-event suffix", len(lateEvs), want)
	}
	for i, ev := range lateEvs {
		if ev != fullEvs[int(firstSeq)+i] {
			t.Fatalf("late event %d = %+v differs from full feed's %+v", i, ev, fullEvs[int(firstSeq)+i])
		}
	}

	// (3) the snapshot covers every placement reported before firstSeq…
	for _, ev := range fullEvs[:firstSeq] {
		if ev.Kind != EventPlace {
			continue
		}
		if got, ok := snap.PartitionOf(ev.V); !ok || got != ev.Partition {
			t.Fatalf("snapshot misses pre-subscription placement of %d (event says %d, snapshot %d, ok=%v)",
				ev.V, ev.Partition, got, ok)
		}
	}
	// …so snapshot + late events reconstruct the final assignment exactly
	// (placements are write-once: overlap is harmless, disagreement is a
	// bug).
	union := snap.Assignments()
	for _, ev := range lateEvs {
		if ev.Kind != EventPlace {
			continue
		}
		if prev, dup := union[ev.V]; dup && prev != ev.Partition {
			t.Fatalf("vertex %d reassigned: snapshot/earlier event says %d, event Seq %d says %d",
				ev.V, prev, ev.Seq, ev.Partition)
		}
		union[ev.V] = ev.Partition
	}
	final := p.Snapshot()
	if len(union) != final.NumAssigned() {
		t.Fatalf("union covers %d vertices, final assignment %d", len(union), final.NumAssigned())
	}
	final.Each(func(v int64, part int) {
		if got, ok := union[v]; !ok || got != part {
			t.Fatalf("union disagrees at vertex %d: got %d (ok=%v), final %d", v, got, ok, part)
		}
	})
}

// TestSubscribeDuringConcurrentIngest subscribes while four producers are
// mid-AddBatch and checks the contract's race half under -race: the feed
// the late subscriber sees is dense from firstSeq, and a snapshot taken
// after Subscribe plus those events covers the final assignment.
func TestSubscribeDuringConcurrentIngest(t *testing.T) {
	wl, err := DatasetWorkload("dblp")
	if err != nil {
		t.Fatalf("DatasetWorkload: %v", err)
	}
	p, err := New(Options{Partitions: 4, ExpectedVertices: 4000, WindowSize: 256}, wl)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	edges, err := GenerateDataset("dblp", 3000, 13)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}

	const producers, batch = 4, 64
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		shard := edges[w*len(edges)/producers : (w+1)*len(edges)/producers]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(shard); i += batch {
				end := min(i+batch, len(shard))
				if err := p.AddBatch(shard[i:end]); err != nil {
					t.Errorf("AddBatch: %v", err)
				}
			}
		}()
	}

	// Subscribe with no synchronisation against the producers.
	late := &eventLog{}
	firstSeq := p.Subscribe(late.add)
	snap := p.Snapshot()

	wg.Wait()
	p.Flush()

	lateEvs := late.events()
	for i, ev := range lateEvs {
		if want := firstSeq + uint64(i); ev.Seq != want {
			t.Fatalf("event %d has Seq %d, want %d: feed not dense from firstSeq", i, ev.Seq, want)
		}
	}
	union := snap.Assignments()
	for _, ev := range lateEvs {
		if ev.Kind == EventPlace {
			union[ev.V] = ev.Partition
		}
	}
	final := p.Snapshot()
	if len(union) != final.NumAssigned() {
		t.Fatalf("union covers %d vertices, final assignment %d", len(union), final.NumAssigned())
	}
	final.Each(func(v int64, part int) {
		if got, ok := union[v]; !ok || got != part {
			t.Fatalf("union disagrees at vertex %d: got %d (ok=%v), final %d", v, got, ok, part)
		}
	})
}
