package loom_test

// Crash-recovery golden tests (ISSUE 7): a durable partitioner that is
// killed mid-stream and reopened must land on exactly the pinned golden
// placements of the uninterrupted, non-durable run — same assignment
// hash, vertex count, sizes, stats and event sequence — at every worker
// count. The WAL layer's fault-injection sweep (loom_fault_test.go)
// proves the on-disk states these tests recover from are the ones real
// crashes produce; here the crashes are process-kill shaped (the handle
// is abandoned without Close, all written bytes survive) and each run
// calls Sync before dying so the whole acknowledged prefix must replay —
// the log group-commits, so un-synced staged records may die with the
// process by design.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"sort"
	"strings"
	"testing"

	"loom"
)

func durableOpts(dir string, n, workers int) loom.Options {
	return loom.Options{
		Partitions: 8, ExpectedVertices: n, WindowSize: 512, Seed: 42, Workers: workers,
		WALDir: dir,
	}
}

// ingestRange feeds edges[from:to] the same way the golden tests do:
// per-edge for workers=1, 311-edge batches otherwise.
func ingestRange(t testing.TB, p *loom.Partitioner, edges []loom.StreamEdge, from, to, workers int) {
	t.Helper()
	if workers == 1 {
		for _, e := range edges[from:to] {
			if err := p.AddEdgeE(e.U, e.LU, e.V, e.LV); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	const batch = 311
	for i := from; i < to; i += batch {
		end := min(i+batch, to)
		if err := p.AddBatch(edges[i:end]); err != nil {
			t.Fatal(err)
		}
	}
}

func snapshotHash(p *loom.Partitioner) (uint64, int) {
	type pair struct {
		v int64
		p int
	}
	var ps []pair
	p.Snapshot().Each(func(v int64, part int) { ps = append(ps, pair{v, part}) })
	sort.Slice(ps, func(i, j int) bool { return ps[i].v < ps[j].v })
	h := fnv.New64a()
	for _, kv := range ps {
		fmt.Fprintf(h, "%d:%d;", kv.v, kv.p)
	}
	return h.Sum64(), len(ps)
}

// TestRecoveryGoldenPlacements: open durable, ingest two thirds with a
// checkpoint after the first third, crash (abandon without Close or
// Flush), reopen — which restores the checkpoint and replays the logged
// third — finish the stream, and require the pinned golden hash. The
// uninterrupted golden run never touches a WAL, so passing here proves
// both that logging does not perturb placement and that recovery is
// bit-exact.
func TestRecoveryGoldenPlacements(t *testing.T) {
	for ds, want := range goldenPlacements {
		t.Run(ds, func(t *testing.T) {
			wl, edges, n := goldenFixture(t, ds)
			for _, workers := range []int{1, 2, 4, 8} {
				dir := t.TempDir()
				third, twoThirds := len(edges)/3, 2*len(edges)/3

				p1, info, err := loom.Open(durableOpts(dir, n, workers), wl)
				if err != nil {
					t.Fatal(err)
				}
				if info.Recovered {
					t.Fatalf("workers=%d: fresh dir reported recovery: %+v", workers, info)
				}
				ingestRange(t, p1, edges, 0, third, workers)
				if _, err := p1.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				ingestRange(t, p1, edges, third, twoThirds, workers)
				// Crash: p1 is abandoned mid-stream, un-Closed, un-Flushed.
				// Sync first so the whole ingested prefix must replay —
				// without it the group-commit buffer legitimately dies
				// with the process (the fault-injection tests cover those
				// partial-tail crashes at every byte offset).
				if err := p1.Sync(); err != nil {
					t.Fatal(err)
				}

				p2, info, err := loom.Open(durableOpts(dir, n, workers), wl)
				if err != nil {
					t.Fatal(err)
				}
				if !info.Recovered || info.CheckpointLSN == 0 || info.ReplayedRecords == 0 {
					t.Fatalf("workers=%d: expected checkpoint+replay recovery, got %+v", workers, info)
				}
				ingestRange(t, p2, edges, twoThirds, len(edges), workers)
				p2.Flush()
				if err := p2.Err(); err != nil {
					t.Fatal(err)
				}
				got, vertices := snapshotHash(p2)
				if uint64(vertices) != want.vertices || got != want.hash {
					t.Fatalf("workers=%d: recovered run hash %#x/%d vertices, want %#x/%d",
						workers, got, vertices, want.hash, want.vertices)
				}
				if err := p2.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestRecoveryStateEquality goes beyond the placement hash: sizes, stats
// and the full assignment map of a crashed-and-recovered partitioner must
// equal the uninterrupted run's exactly.
func TestRecoveryStateEquality(t *testing.T) {
	wl, edges, n := goldenFixture(t, "provgen")
	half := len(edges) / 2

	ref, err := loom.New(loom.Options{
		Partitions: 8, ExpectedVertices: n, WindowSize: 512, Seed: 42,
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	ingestRange(t, ref, edges, 0, len(edges), 1)
	ref.Flush()

	dir := t.TempDir()
	p1, _, err := loom.Open(durableOpts(dir, n, 1), wl)
	if err != nil {
		t.Fatal(err)
	}
	ingestRange(t, p1, edges, 0, half, 1)
	if _, err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Crash immediately after the checkpoint: replay is empty, the
	// checkpoint alone must carry the full mid-window state.
	p2, info, err := loom.Open(durableOpts(dir, n, 1), wl)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Recovered || info.ReplayedRecords != 0 {
		t.Fatalf("expected pure-checkpoint recovery, got %+v", info)
	}
	ingestRange(t, p2, edges, half, len(edges), 1)
	p2.Flush()
	defer p2.Close()

	if !slices.Equal(ref.Sizes(), p2.Sizes()) {
		t.Errorf("sizes diverged: %v vs %v", ref.Sizes(), p2.Sizes())
	}
	if ref.Stats() != p2.Stats() {
		t.Errorf("stats diverged:\nuninterrupted %+v\nrecovered     %+v", ref.Stats(), p2.Stats())
	}
	if !reflect.DeepEqual(ref.Assignments(), p2.Assignments()) {
		t.Error("assignment maps diverged")
	}
	re, err := ref.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	pe, err := p2.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if re != pe {
		t.Errorf("evaluations diverged: %+v vs %+v", re, pe)
	}
}

// TestRecoveryEventStreamContinuity: the OnPlace event feed across a
// crash — everything delivered before the crash plus everything delivered
// after the reopen — must be the uninterrupted run's event stream, with
// one dense Seq numbering and no replayed duplicates (recovery advances
// the sequence through replay without fanning out).
func TestRecoveryEventStreamContinuity(t *testing.T) {
	wl, edges, n := goldenFixture(t, "dblp")
	half, threeQ := len(edges)/2, 3*len(edges)/4

	ref, err := loom.New(loom.Options{
		Partitions: 8, ExpectedVertices: n, WindowSize: 512, Seed: 42,
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	var want []loom.PlacementEvent
	ref.OnPlace(func(ev loom.PlacementEvent) { want = append(want, ev) })
	ingestRange(t, ref, edges, 0, len(edges), 1)
	ref.Flush()

	dir := t.TempDir()
	var got []loom.PlacementEvent
	p1, _, err := loom.Open(durableOpts(dir, n, 1), wl)
	if err != nil {
		t.Fatal(err)
	}
	p1.OnPlace(func(ev loom.PlacementEvent) { got = append(got, ev) })
	ingestRange(t, p1, edges, 0, half, 1)
	if _, err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ingestRange(t, p1, edges, half, threeQ, 1)
	// Crash. The events for (half, threeQ] were delivered live and their
	// records will be replayed on reopen — but not re-delivered. Sync
	// first so the crash cannot take the staged group-commit tail with it.
	if err := p1.Sync(); err != nil {
		t.Fatal(err)
	}
	p2, _, err := loom.Open(durableOpts(dir, n, 1), wl)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	p2.OnPlace(func(ev loom.PlacementEvent) { got = append(got, ev) })
	ingestRange(t, p2, edges, threeQ, len(edges), 1)
	p2.Flush()

	if len(got) != len(want) {
		t.Fatalf("event stream across crash has %d events, uninterrupted has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, got[i], want[i])
		}
		if got[i].Seq != uint64(i) {
			t.Fatalf("event %d carries seq %d — numbering not dense across the crash", i, got[i].Seq)
		}
	}
}

// TestRecoveryWithAddedQueries: AddQuery calls are logged and
// checkpointed like edges; a crash between query additions must recover
// the evolved workload (and the matcher state referencing its trie
// nodes) exactly.
func TestRecoveryWithAddedQueries(t *testing.T) {
	mkwl := func() *loom.Workload {
		wl, err := loom.DatasetWorkload("dblp")
		if err != nil {
			t.Fatal(err)
		}
		return wl
	}
	_, edges, n := goldenFixture(t, "dblp")
	extra := func() *loom.Pattern {
		return loom.NewPattern().
			AddEdge(0, "author", 1, "paper").
			AddEdge(1, "paper", 2, "venue").
			AddEdge(0, "author", 3, "paper")
	}
	third, twoThirds := len(edges)/3, 2*len(edges)/3

	ref, err := loom.New(loom.Options{
		Partitions: 8, ExpectedVertices: n, WindowSize: 512, Seed: 42,
	}, mkwl())
	if err != nil {
		t.Fatal(err)
	}
	ingestRange(t, ref, edges, 0, third, 1)
	if err := ref.AddQuery("fanout", extra(), 0.5); err != nil {
		t.Fatal(err)
	}
	ingestRange(t, ref, edges, third, len(edges), 1)
	ref.Flush()
	wantHash, wantN := snapshotHash(ref)

	dir := t.TempDir()
	p1, _, err := loom.Open(durableOpts(dir, n, 1), mkwl())
	if err != nil {
		t.Fatal(err)
	}
	ingestRange(t, p1, edges, 0, third, 1)
	if err := p1.AddQuery("fanout", extra(), 0.5); err != nil {
		t.Fatal(err)
	}
	ingestRange(t, p1, edges, third, twoThirds, 1)
	if _, err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Crash after the checkpoint (which carries the query tail).
	p2, info, err := loom.Open(durableOpts(dir, n, 1), mkwl())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if !info.Recovered {
		t.Fatalf("no recovery: %+v", info)
	}
	ingestRange(t, p2, edges, twoThirds, len(edges), 1)
	p2.Flush()
	if got, gotN := snapshotHash(p2); got != wantHash || gotN != wantN {
		t.Fatalf("recovered run with added query: %#x/%d, want %#x/%d", got, gotN, wantHash, wantN)
	}
}

// walFiles lists dir entries with the given suffix, sorted ascending.
func walFiles(t *testing.T, dir, suffix string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), suffix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 || off >= int64(len(data)) {
		t.Fatalf("flip %s@%d: file is %d bytes", path, off, len(data))
	}
	data[off] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptLogTruncatesWithWarning: a flipped bit mid-log is detected
// by the record CRC; recovery truncates at the last intact record,
// reports it, and the partitioner stays fully usable — degradation, not
// failure.
func TestCorruptLogTruncatesWithWarning(t *testing.T) {
	wl, edges, n := goldenFixture(t, "dblp")
	dir := t.TempDir()
	opt := durableOpts(dir, n, 1)
	opt.WALSync = loom.WALSyncAlways

	p1, _, err := loom.Open(opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	ingestRange(t, p1, edges, 0, 400, 1)
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	segs := walFiles(t, dir, ".seg")
	if len(segs) == 0 {
		t.Fatal("no segment files written")
	}
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, segs[0], st.Size()*2/3)

	p2, info, err := loom.Open(opt, wl)
	if err != nil {
		t.Fatalf("corrupt mid-log must degrade, not fail: %v", err)
	}
	defer p2.Close()
	if !info.TornTail || len(info.Warnings) == 0 {
		t.Fatalf("truncation not surfaced: %+v", info)
	}
	if info.LastLSN == 0 || info.LastLSN >= 400 {
		t.Fatalf("LastLSN %d: want a strict prefix of the 400 records", info.LastLSN)
	}
	if err := p2.AddEdgeE(999_999, "author", 999_998, "paper"); err != nil {
		t.Fatalf("partitioner unusable after degraded recovery: %v", err)
	}
	if err := p2.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptCheckpointFallsBack: when the newest checkpoint is damaged,
// recovery drops to the previous one and replays the longer log tail —
// landing on the same final state, since every record past the older
// checkpoint is still retained.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	wl, edges, n := goldenFixture(t, "provgen")
	want := goldenPlacements["provgen"]
	dir := t.TempDir()
	third, twoThirds := len(edges)/3, 2*len(edges)/3

	p1, _, err := loom.Open(durableOpts(dir, n, 2), wl)
	if err != nil {
		t.Fatal(err)
	}
	ingestRange(t, p1, edges, 0, third, 2)
	if _, err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ingestRange(t, p1, edges, third, twoThirds, 2)
	if _, err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ingestRange(t, p1, edges, twoThirds, len(edges), 2)
	p1.Flush()
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	ckpts := walFiles(t, dir, ".ckpt")
	if len(ckpts) != 2 {
		t.Fatalf("expected 2 retained checkpoints, found %v", ckpts)
	}
	flipByte(t, ckpts[len(ckpts)-1], 64) // newest (names sort by LSN)

	p2, info, err := loom.Open(durableOpts(dir, n, 2), wl)
	if err != nil {
		t.Fatalf("corrupt newest checkpoint must fall back, not fail: %v", err)
	}
	defer p2.Close()
	if !info.CheckpointFallback || len(info.Warnings) == 0 {
		t.Fatalf("fallback not surfaced: %+v", info)
	}
	if got, vertices := snapshotHash(p2); got != want.hash || uint64(vertices) != want.vertices {
		t.Fatalf("fallback recovery diverged: %#x/%d, want %#x/%d", got, vertices, want.hash, want.vertices)
	}
}

// TestMissingSegmentIsTypedError: a gap in the segment chain cannot be
// recovered through; Open must surface loom.ErrWALGap — an error, never
// a panic or a silently shortened stream.
func TestMissingSegmentIsTypedError(t *testing.T) {
	wl, edges, n := goldenFixture(t, "dblp")
	dir := t.TempDir()
	opt := durableOpts(dir, n, 1)
	opt.WALSegmentBytes = 2048 // force several segments

	p1, _, err := loom.Open(opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	ingestRange(t, p1, edges, 0, 600, 1)
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	segs := walFiles(t, dir, ".seg")
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments for a mid-chain gap, got %d", len(segs))
	}
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	_, _, err = loom.Open(opt, wl)
	if !errors.Is(err, loom.ErrWALGap) {
		t.Fatalf("Open over a gapped log = %v, want ErrWALGap", err)
	}
}

// TestMismatchedConfigIsTypedError: a checkpoint is only valid against
// the Options and base workload that produced it; both mismatches are
// ErrWALConfig — a configuration error, distinct from corruption.
func TestMismatchedConfigIsTypedError(t *testing.T) {
	wl, edges, n := goldenFixture(t, "dblp")
	dir := t.TempDir()
	p1, _, err := loom.Open(durableOpts(dir, n, 1), wl)
	if err != nil {
		t.Fatal(err)
	}
	ingestRange(t, p1, edges, 0, 200, 1)
	if _, err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	badOpt := durableOpts(dir, n, 1)
	badOpt.Partitions = 16
	if _, _, err := loom.Open(badOpt, wl); !errors.Is(err, loom.ErrWALConfig) {
		t.Fatalf("Open with different Partitions = %v, want ErrWALConfig", err)
	}

	otherWL, err := loom.DatasetWorkload("lubm")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loom.Open(durableOpts(dir, n, 1), otherWL); !errors.Is(err, loom.ErrWALConfig) {
		t.Fatalf("Open with different workload = %v, want ErrWALConfig", err)
	}

	// The matching config still opens fine.
	p2, _, err := loom.Open(durableOpts(dir, n, 1), wl)
	if err != nil {
		t.Fatal(err)
	}
	p2.Close()
}

// TestCheckpointPortableAcrossWorkers: Workers shapes only scheduling,
// never placement (PR 4's bit-identity), so a checkpoint written under
// one worker count must restore under another and still hit the golden
// hash.
func TestCheckpointPortableAcrossWorkers(t *testing.T) {
	wl, edges, n := goldenFixture(t, "lubm")
	want := goldenPlacements["lubm"]
	dir := t.TempDir()
	half := len(edges) / 2

	p1, _, err := loom.Open(durableOpts(dir, n, 4), wl)
	if err != nil {
		t.Fatal(err)
	}
	ingestRange(t, p1, edges, 0, half, 4)
	if _, err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	p2, info, err := loom.Open(durableOpts(dir, n, 1), wl)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if !info.Recovered {
		t.Fatalf("no recovery: %+v", info)
	}
	ingestRange(t, p2, edges, half, len(edges), 1)
	p2.Flush()
	if got, vertices := snapshotHash(p2); got != want.hash || uint64(vertices) != want.vertices {
		t.Fatalf("cross-worker recovery diverged: %#x/%d, want %#x/%d", got, vertices, want.hash, want.vertices)
	}
}

// TestClosedPartitionerRefusesIngest: Close ends ingest deterministically
// (reads keep working) — an append after Close must not silently succeed
// in memory while the log no longer records it.
func TestClosedPartitionerRefusesIngest(t *testing.T) {
	wl, edges, n := goldenFixture(t, "dblp")
	dir := t.TempDir()
	p, _, err := loom.Open(durableOpts(dir, n, 1), wl)
	if err != nil {
		t.Fatal(err)
	}
	ingestRange(t, p, edges, 0, 100, 1)
	p.Flush()
	wantHash, _ := snapshotHash(p)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEdgeE(1, "author", 2, "paper"); err == nil {
		t.Fatal("AddEdgeE after Close must fail")
	}
	if err := p.AddBatch(edges[100:101]); err == nil {
		t.Fatal("AddBatch after Close must fail")
	}
	if _, err := p.Checkpoint(); err == nil {
		t.Fatal("Checkpoint after Close must fail")
	}
	if got, _ := snapshotHash(p); got != wantHash {
		t.Fatal("reads changed after Close")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

// TestRecoverySchemeValuesSurviveCheckpoint is the regression test for a
// real divergence: signature r-values are drawn in label first-use order,
// so a label whose edges are all non-motif (dblp's "Year") never enters
// the window and is absent from the restored window state. Before the
// scheme's values and generator position were checkpointed, recovery
// re-drew that label lazily during replay — at a different generator
// position, so with a different r-value — flipping the single-edge motif
// gate and windowing edges the primary had placed immediately. The
// natural-order dblp stream at the examples/router configuration
// reproduces it; the golden fixtures (bfs order, window 512) never did.
func TestRecoverySchemeValuesSurviveCheckpoint(t *testing.T) {
	wl, err := loom.DatasetWorkload("dblp")
	if err != nil {
		t.Fatal(err)
	}
	edges, err := loom.GenerateDataset("dblp", 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	opts := func(dir string) loom.Options {
		return loom.Options{
			Partitions: 4, ExpectedVertices: 4000, WindowSize: 256,
			WALDir: filepath.Join(root, dir),
		}
	}

	// Primary: checkpoint at half, one more synced batch in the log tail,
	// then ship the directory (checkpoint + tail) to a replica.
	p, _, err := loom.Open(opts("primary"), wl)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 128
	half := len(edges) / 2
	for i := 0; i < half; i += batch {
		if err := p.AddBatch(edges[i:min(i+batch, half)]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.AddBatch(edges[half : half+batch]); err != nil {
		t.Fatal(err)
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(filepath.Join(root, "primary"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		b, err := os.ReadFile(filepath.Join(root, "primary", ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		dst := filepath.Join(root, "replica")
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// The replica restores the checkpoint and replays the tail; both sides
	// then finish the stream identically and must agree exactly.
	r, info, err := loom.Open(opts("replica"), wl)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Recovered || info.ReplayedRecords == 0 {
		t.Fatalf("replica should recover a checkpoint plus a logged tail, got %+v", info)
	}
	for _, part := range []*loom.Partitioner{p, r} {
		for i := half + batch; i < len(edges); i += batch {
			if err := part.AddBatch(edges[i:min(i+batch, len(edges))]); err != nil {
				t.Fatal(err)
			}
		}
		part.Flush()
		if err := part.Err(); err != nil {
			t.Fatal(err)
		}
	}
	wantHash, wantN := snapshotHash(p)
	gotHash, gotN := snapshotHash(r)
	if gotHash != wantHash || gotN != wantN {
		t.Fatalf("replica placements (%d vertices, hash %016x) diverge from primary (%d, %016x)",
			gotN, gotHash, wantN, wantHash)
	}
	if want, got := p.Stats(), r.Stats(); !reflect.DeepEqual(want, got) {
		t.Fatalf("stats diverge:\nprimary %+v\nreplica %+v", want, got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
