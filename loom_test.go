package loom

import (
	"testing"
)

func socialWorkload() *Workload {
	wl := NewWorkload("social")
	wl.Add("friends-of-friends", Path("person", "person", "person"), 0.6)
	wl.Add("same-city", Path("person", "city", "person"), 0.4)
	return wl
}

func TestPublicQuickstartFlow(t *testing.T) {
	wl := socialWorkload()
	p, err := New(Options{Partitions: 2, ExpectedVertices: 16, WindowSize: 8}, wl)
	if err != nil {
		t.Fatal(err)
	}
	// A small two-community social graph.
	edges := []StreamEdge{
		{1, "person", 2, "person"}, {2, "person", 3, "person"}, {1, "person", 3, "person"},
		{1, "person", 10, "city"}, {2, "person", 10, "city"}, {3, "person", 10, "city"},
		{4, "person", 5, "person"}, {5, "person", 6, "person"}, {4, "person", 6, "person"},
		{4, "person", 11, "city"}, {5, "person", 11, "city"}, {6, "person", 11, "city"},
	}
	for _, e := range edges {
		p.AddStreamEdge(e)
	}
	p.Flush()

	for _, v := range []int64{1, 2, 3, 4, 5, 6, 10, 11} {
		if _, ok := p.PartitionOf(v); !ok {
			t.Errorf("vertex %d unassigned after Flush", v)
		}
	}
	if got := p.Partitions(); got != 2 {
		t.Errorf("Partitions = %d", got)
	}
	sizes := p.Sizes()
	if sizes[0]+sizes[1] != 8 {
		t.Errorf("sizes = %v, want total 8", sizes)
	}
	ev, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if ev.AssignedVertices != 8 {
		t.Errorf("evaluation: %+v", ev)
	}
	st := p.Stats()
	if st.EdgesProcessed != len(edges) {
		t.Errorf("stats: %+v", st)
	}
	if st.WindowLen != 0 {
		t.Errorf("window not drained: %+v", st)
	}
	asg := p.Assignments()
	if len(asg) != 8 {
		t.Errorf("Assignments len = %d", len(asg))
	}
}

func TestOptionsValidation(t *testing.T) {
	wl := socialWorkload()
	if _, err := New(Options{Partitions: 0, ExpectedVertices: 10}, wl); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := New(Options{Partitions: 2, ExpectedVertices: 0}, wl); err == nil {
		t.Error("no vertex estimate: want error")
	}
	if _, err := New(Options{Partitions: 2, ExpectedVertices: 10}, nil); err == nil {
		t.Error("nil workload: want error")
	}
	if _, err := New(Options{Partitions: 2, ExpectedVertices: 10}, NewWorkload("empty")); err == nil {
		t.Error("empty workload: want error")
	}
}

func TestBaselines(t *testing.T) {
	wl := socialWorkload()
	for _, algo := range []string{"hash", "ldg", "fennel"} {
		p, err := NewBaseline(algo, Options{Partitions: 2, ExpectedVertices: 8}, wl)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != algo {
			t.Errorf("Name = %s", p.Name())
		}
		p.AddEdge(1, "person", 2, "person")
		p.AddEdge(2, "person", 3, "person")
		p.Flush()
		if _, ok := p.PartitionOf(2); !ok {
			t.Errorf("%s: vertex 2 unassigned", algo)
		}
		if _, err := p.Evaluate(); err != nil {
			t.Errorf("%s: Evaluate: %v", algo, err)
		}
		if err := p.AddQuery("x", Path("a", "b"), 1); err == nil {
			t.Errorf("%s: AddQuery on baseline should fail", algo)
		}
	}
	if _, err := NewBaseline("metis", Options{Partitions: 2, ExpectedVertices: 8}, wl); err == nil {
		t.Error("unknown baseline: want error")
	}
}

func TestWorkloadEvolution(t *testing.T) {
	wl := socialWorkload()
	p, err := New(Options{Partitions: 2, ExpectedVertices: 100, WindowSize: 4}, wl)
	if err != nil {
		t.Fatal(err)
	}
	p.AddEdge(1, "person", 2, "person")
	if err := p.AddQuery("interests", Path("person", "topic"), 0.5); err != nil {
		t.Fatal(err)
	}
	// Topic edges now pass the single-edge motif gate.
	p.AddEdge(2, "person", 50, "topic")
	p.Flush()
	if _, ok := p.PartitionOf(50); !ok {
		t.Error("topic vertex unassigned")
	}
	st := p.Stats()
	if st.WindowedEdges == 0 {
		t.Errorf("no edges were windowed: %+v", st)
	}
}

func TestDisableGraphRecording(t *testing.T) {
	p, err := New(Options{
		Partitions: 2, ExpectedVertices: 8, DisableGraphRecording: true,
	}, socialWorkload())
	if err != nil {
		t.Fatal(err)
	}
	p.AddEdge(1, "person", 2, "person")
	p.Flush()
	if _, err := p.Evaluate(); err == nil {
		t.Error("Evaluate without recording: want error")
	}
}

func TestRobustIngest(t *testing.T) {
	p, err := New(Options{Partitions: 2, ExpectedVertices: 8, WindowSize: 4}, socialWorkload())
	if err != nil {
		t.Fatal(err)
	}
	p.AddEdge(1, "person", 1, "person") // self-loop: dropped
	p.AddEdge(1, "person", 2, "person")
	p.AddEdge(1, "person", 2, "person") // duplicate: dropped
	p.Flush()
	if _, ok := p.PartitionOf(1); !ok {
		t.Error("vertex 1 unassigned")
	}
}

func TestGenerateDatasetAndWorkload(t *testing.T) {
	edges, err := GenerateDataset("provgen", 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) == 0 {
		t.Fatal("no edges")
	}
	wl, err := DatasetWorkload("provgen")
	if err != nil {
		t.Fatal(err)
	}
	if wl.Len() == 0 {
		t.Fatal("empty workload")
	}
	if _, err := GenerateDataset("nope", 10, 1); err == nil {
		t.Error("unknown dataset: want error")
	}

	// Full pipeline through the public API: Loom must beat Hash on ipt.
	run := func(algo string) float64 {
		opt := Options{Partitions: 4, ExpectedVertices: 900, WindowSize: 256}
		var p *Partitioner
		var err error
		if algo == "loom" {
			p, err = New(opt, wl)
		} else {
			p, err = NewBaseline(algo, opt, wl)
		}
		if err != nil {
			t.Fatal(err)
		}
		ordered, err := OrderStream(edges, "bfs", 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ordered {
			p.AddStreamEdge(e)
		}
		p.Flush()
		ev, err := p.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		return ev.IPT
	}
	loomIPT := run("loom")
	hashIPT := run("hash")
	if hashIPT == 0 {
		t.Skip("degenerate graph: hash ipt is zero")
	}
	if loomIPT >= hashIPT {
		t.Errorf("loom ipt %v >= hash ipt %v", loomIPT, hashIPT)
	}
}

func TestOrderStream(t *testing.T) {
	edges := []StreamEdge{
		{1, "a", 2, "b"}, {2, "b", 3, "c"}, {3, "c", 4, "d"},
	}
	for _, order := range []string{"bfs", "dfs", "random", "original"} {
		out, err := OrderStream(edges, order, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(edges) {
			t.Errorf("%s: %d edges", order, len(out))
		}
	}
	if _, err := OrderStream(edges, "sorted", 1); err == nil {
		t.Error("unknown order: want error")
	}
}

func TestRefinePublicAPI(t *testing.T) {
	edges, err := GenerateDataset("provgen", 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := DatasetWorkload("provgen")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, e := range edges {
		seen[e.U], seen[e.V] = true, true
	}
	// Refine a hash baseline: must improve ipt.
	p, err := NewBaseline("hash", Options{Partitions: 4, ExpectedVertices: len(seen)}, wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		p.AddStreamEdge(e)
	}
	p.Flush()
	before, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Refine(4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Moves == 0 || st.CutAfter >= st.CutBefore {
		t.Errorf("refine stats look wrong: %+v", st)
	}
	after, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if after.IPT >= before.IPT {
		t.Errorf("refined ipt %.1f >= original %.1f", after.IPT, before.IPT)
	}
	// Refine without recording must fail.
	p2, err := NewBaseline("hash", Options{Partitions: 2, ExpectedVertices: 10, DisableGraphRecording: true}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Refine(2); err == nil {
		t.Error("Refine without recording: want error")
	}
}

func TestRestreamPublicAPI(t *testing.T) {
	edges, err := GenerateDataset("provgen", 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := DatasetWorkload("provgen")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, e := range edges {
		seen[e.U], seen[e.V] = true, true
	}
	opt := Options{Partitions: 4, ExpectedVertices: len(seen), WindowSize: 128}
	p, err := New(opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := OrderStream(edges, "random", 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ordered {
		p.AddStreamEdge(e)
	}
	p.Flush()

	p2, err := p.Restream()
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := OrderStream(edges, "random", 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range reordered {
		p2.AddStreamEdge(e)
	}
	p2.Flush()
	if p2.Snapshot().NumAssigned() != len(seen) {
		t.Error("restream pass did not assign everything")
	}
	// Baselines can't restream.
	hb, err := NewBaseline("hash", opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hb.Restream(); err == nil {
		t.Error("baseline Restream: want error")
	}
}

func TestSimulatePublicAPI(t *testing.T) {
	wl := socialWorkload()
	p, err := New(Options{Partitions: 2, ExpectedVertices: 16, WindowSize: 8}, wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []StreamEdge{
		{1, "person", 2, "person"}, {2, "person", 3, "person"},
		{4, "person", 5, "person"}, {1, "person", 10, "city"},
		{3, "person", 10, "city"},
	} {
		p.AddStreamEdge(e)
	}
	p.Flush()
	sim, err := p.Simulate(0, 0) // defaults: 1 / 1000
	if err != nil {
		t.Fatal(err)
	}
	if sim.LocalHops+sim.RemoteHops == 0 {
		t.Error("no hops simulated")
	}
	if len(sim.MachineLoad) != 3 { // 2 machines + Ptemp slot
		t.Errorf("MachineLoad = %v", sim.MachineLoad)
	}
	want := float64(sim.LocalHops)*1 + float64(sim.RemoteHops)*1000
	// TotalCost is frequency-weighted; with freqs summing to 1 it is
	// bounded by the unweighted cost.
	if sim.TotalCost > want {
		t.Errorf("cost %v exceeds unweighted bound %v", sim.TotalCost, want)
	}
	// Without recording: error.
	p2, err := New(Options{Partitions: 2, ExpectedVertices: 4, DisableGraphRecording: true}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Simulate(1, 10); err == nil {
		t.Error("Simulate without recording: want error")
	}
}

func TestPatternBuilders(t *testing.T) {
	if Path("a", "b", "c").Edges() != 2 {
		t.Error("Path edges")
	}
	if Cycle("a", "b", "c").Edges() != 3 {
		t.Error("Cycle edges")
	}
	if Star("h", "a", "b").Edges() != 2 {
		t.Error("Star edges")
	}
	p := NewPattern().AddEdge(1, "x", 2, "y").AddEdge(2, "y", 3, "z")
	if p.Edges() != 2 {
		t.Error("NewPattern edges")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate pattern edge should panic")
		}
	}()
	p.AddEdge(1, "x", 2, "y")
}
