package loom_test

import (
	"strings"
	"testing"

	"loom"
)

// ---------------------------------------------------------------------------
// OrderStream error paths.
// ---------------------------------------------------------------------------

func orderableStream() []loom.StreamEdge {
	return []loom.StreamEdge{
		{U: 1, LU: "a", V: 2, LV: "b"},
		{U: 2, LU: "b", V: 3, LV: "a"},
		{U: 3, LU: "a", V: 4, LV: "b"},
	}
}

func TestOrderStreamUnknownOrder(t *testing.T) {
	if _, err := loom.OrderStream(orderableStream(), "zigzag", 1); err == nil {
		t.Fatal("unknown order: want error")
	} else if !strings.Contains(err.Error(), "zigzag") {
		t.Errorf("error should name the bad order, got %v", err)
	}
}

func TestOrderStreamInvalidGraph(t *testing.T) {
	// Vertex 1 appears with two different labels: not a valid labelled
	// graph (fl is a function), so ordering must fail.
	bad := []loom.StreamEdge{
		{U: 1, LU: "a", V: 2, LV: "b"},
		{U: 1, LU: "c", V: 3, LV: "b"},
	}
	if _, err := loom.OrderStream(bad, "bfs", 1); err == nil {
		t.Fatal("label conflict: want error")
	}
}

func TestOrderStreamValidOrders(t *testing.T) {
	in := orderableStream()
	for _, order := range []string{"bfs", "dfs", "random", "original"} {
		out, err := loom.OrderStream(in, order, 42)
		if err != nil {
			t.Fatalf("%s: %v", order, err)
		}
		if len(out) != len(in) {
			t.Errorf("%s: %d edges out, want %d", order, len(out), len(in))
		}
	}
}

// ---------------------------------------------------------------------------
// NewBaseline / New error paths.
// ---------------------------------------------------------------------------

func TestNewBaselineUnknownAlgo(t *testing.T) {
	opt := loom.Options{Partitions: 2, ExpectedVertices: 10}
	if _, err := loom.NewBaseline("metis", opt, nil); err == nil {
		t.Fatal("unknown baseline: want error")
	} else if !strings.Contains(err.Error(), "metis") {
		t.Errorf("error should name the bad algo, got %v", err)
	}
}

func TestNewBaselineInvalidOptions(t *testing.T) {
	if _, err := loom.NewBaseline("hash", loom.Options{Partitions: 0, ExpectedVertices: 10}, nil); err == nil {
		t.Error("Partitions=0: want error")
	}
	if _, err := loom.NewBaseline("ldg", loom.Options{Partitions: 2, ExpectedVertices: 0}, nil); err == nil {
		t.Error("ExpectedVertices=0: want error")
	}
}

func TestNewBaselineValidAlgos(t *testing.T) {
	opt := loom.Options{Partitions: 2, ExpectedVertices: 10}
	for _, algo := range []string{"hash", "ldg", "fennel"} {
		p, err := loom.NewBaseline(algo, opt, nil)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if p.Name() != algo {
			t.Errorf("Name() = %q, want %q", p.Name(), algo)
		}
	}
}

func TestNewRequiresWorkload(t *testing.T) {
	opt := loom.Options{Partitions: 2, ExpectedVertices: 10}
	if _, err := loom.New(opt, nil); err == nil {
		t.Error("nil workload: want error")
	}
	if _, err := loom.New(opt, loom.NewWorkload("empty")); err == nil {
		t.Error("empty workload: want error")
	}
}

// A baseline without a workload must refuse workload-dependent operations
// rather than crash.
func TestBaselineWithoutWorkloadRefusesEvaluate(t *testing.T) {
	p, err := loom.NewBaseline("hash", loom.Options{Partitions: 2, ExpectedVertices: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.AddEdge(1, "a", 2, "b")
	p.Flush()
	if _, err := p.Evaluate(); err == nil {
		t.Error("Evaluate without workload: want error")
	}
	if err := p.AddQuery("q", loom.Path("a", "b"), 1); err == nil {
		t.Error("AddQuery on baseline: want error")
	}
}
