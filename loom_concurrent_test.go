package loom_test

import (
	"strings"
	"sync"
	"testing"

	"loom"
)

// Tests for the concurrent, batch-first public API: AddBatch golden
// equivalence with the historical per-edge path, N-producer ingest under
// the race detector, snapshot consistency, placement-event completeness
// and the sticky-error surface.

func concurrencyWorkload(t testing.TB) *loom.Workload {
	t.Helper()
	wl, err := loom.DatasetWorkload("provgen")
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

func concurrencyStream(t testing.TB, scale int) []loom.StreamEdge {
	t.Helper()
	edges, err := loom.GenerateDataset("provgen", scale, 3)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := loom.OrderStream(edges, "bfs", 5)
	if err != nil {
		t.Fatal(err)
	}
	return ordered
}

func distinctVertices(edges []loom.StreamEdge) int {
	seen := map[int64]bool{}
	for _, e := range edges {
		seen[e.U], seen[e.V] = true, true
	}
	return len(seen)
}

// chunk splits edges into batches of at most n.
func chunk(edges []loom.StreamEdge, n int) [][]loom.StreamEdge {
	var out [][]loom.StreamEdge
	for i := 0; i < len(edges); i += n {
		end := i + n
		if end > len(edges) {
			end = len(edges)
		}
		out = append(out, edges[i:end])
	}
	return out
}

// TestAddBatchGoldenIdentical: a single-threaded AddBatch replay must
// produce bit-identical placements to the old per-edge AddEdge path, for
// Loom and for a baseline.
func TestAddBatchGoldenIdentical(t *testing.T) {
	wl := concurrencyWorkload(t)
	edges := concurrencyStream(t, 1500)
	n := distinctVertices(edges)
	opt := loom.Options{Partitions: 4, ExpectedVertices: n, WindowSize: 128}

	build := func(algo string) *loom.Partitioner {
		var p *loom.Partitioner
		var err error
		if algo == "loom" {
			p, err = loom.New(opt, wl)
		} else {
			p, err = loom.NewBaseline(algo, opt, wl)
		}
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	for _, algo := range []string{"loom", "fennel"} {
		perEdge := build(algo)
		for _, e := range edges {
			perEdge.AddStreamEdge(e)
		}
		perEdge.Flush()

		batched := build(algo)
		for _, b := range chunk(edges, 37) { // odd size: batches straddle evictions
			if err := batched.AddBatch(b); err != nil {
				t.Fatalf("%s: AddBatch: %v", algo, err)
			}
		}
		batched.Flush()

		want := perEdge.Assignments()
		got := batched.Assignments()
		if len(want) != len(got) {
			t.Fatalf("%s: %d assigned per-edge vs %d batched", algo, len(want), len(got))
		}
		for v, part := range want {
			if got[v] != part {
				t.Fatalf("%s: vertex %d placed in %d per-edge but %d batched", algo, v, part, got[v])
			}
		}
	}
}

// TestConcurrentProducers: N producers feed one partitioner via AddBatch
// while readers snapshot and query placements; run under -race in CI.
func TestConcurrentProducers(t *testing.T) {
	wl := concurrencyWorkload(t)
	edges := concurrencyStream(t, 2000)
	n := distinctVertices(edges)
	p, err := loom.New(loom.Options{Partitions: 4, ExpectedVertices: n, WindowSize: 128}, wl)
	if err != nil {
		t.Fatal(err)
	}

	const producers = 4
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Stride-partition the stream so producers interleave.
			var mine []loom.StreamEdge
			for i := w; i < len(edges); i += producers {
				mine = append(mine, edges[i])
			}
			for _, b := range chunk(mine, 61) {
				if err := p.AddBatch(b); err != nil {
					t.Errorf("producer %d: %v", w, err)
					return
				}
			}
		}()
	}

	// Concurrent readers exercise every read path during ingest.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := p.Snapshot()
				sizes := snap.Sizes()
				total := 0
				for _, s := range sizes {
					total += s
				}
				if total != snap.NumAssigned() {
					t.Errorf("snapshot sizes sum %d != assigned %d", total, snap.NumAssigned())
					return
				}
				p.PartitionOf(edges[0].U)
				p.Sizes()
				p.Stats()
				p.Err()
			}
		}()
	}

	wg.Wait()
	close(done)
	readers.Wait()
	p.Flush()

	if err := p.Err(); err != nil {
		t.Fatalf("ingest error: %v", err)
	}
	snap := p.Snapshot()
	if snap.NumAssigned() != n {
		t.Fatalf("assigned %d of %d vertices", snap.NumAssigned(), n)
	}
	total := 0
	for _, s := range p.Sizes() {
		total += s
	}
	if total != n {
		t.Fatalf("sizes sum %d != %d", total, n)
	}
}

// TestSnapshotIsPrefixState: because batches apply atomically, any snapshot
// taken mid-stream must equal the state of a single-threaded replay of some
// whole-batch prefix of the stream.
func TestSnapshotIsPrefixState(t *testing.T) {
	wl := concurrencyWorkload(t)
	edges := concurrencyStream(t, 1200)
	n := distinctVertices(edges)
	opt := loom.Options{Partitions: 4, ExpectedVertices: n, WindowSize: 64}
	batches := chunk(edges, 50)

	// Single-threaded replay: record the full assignment after every batch.
	replay, err := loom.New(opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	prefix := make([]map[int64]int, 0, len(batches)+1)
	prefix = append(prefix, replay.Assignments()) // zero-batch state
	for _, b := range batches {
		if err := replay.AddBatch(b); err != nil {
			t.Fatal(err)
		}
		prefix = append(prefix, replay.Assignments())
	}

	// Live partitioner: one producer, one concurrent snapshotter.
	p, err := loom.New(opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	producerDone := make(chan struct{})
	go func() {
		defer close(producerDone)
		for _, b := range batches {
			if err := p.AddBatch(b); err != nil {
				t.Errorf("AddBatch: %v", err)
				return
			}
		}
	}()

	var snaps []map[int64]int
	for alive := true; alive; {
		select {
		case <-producerDone:
			alive = false
		default:
		}
		snaps = append(snaps, p.Snapshot().Assignments())
	}

	matches := func(snap map[int64]int) bool {
		for _, state := range prefix {
			if len(state) != len(snap) {
				continue
			}
			equal := true
			for v, part := range snap {
				if got, ok := state[v]; !ok || got != part {
					equal = false
					break
				}
			}
			if equal {
				return true
			}
		}
		return false
	}
	for i, snap := range snaps {
		if !matches(snap) {
			t.Fatalf("snapshot %d (%d assigned) equals no whole-batch prefix state", i, len(snap))
		}
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots taken")
	}
}

// TestReadersUnderIngest: the lock-free read path under fire. One producer
// streams batches while N reader goroutines hammer PartitionOf and Snapshot;
// every observed snapshot must equal a whole-batch-prefix replay, and every
// observed placement must agree with the final assignment (placements are
// immutable in one-pass streaming). Run under -race in CI.
func TestReadersUnderIngest(t *testing.T) {
	wl := concurrencyWorkload(t)
	edges := concurrencyStream(t, 1500)
	n := distinctVertices(edges)
	opt := loom.Options{Partitions: 4, ExpectedVertices: n, WindowSize: 64}
	batches := chunk(edges, 40)

	// Single-threaded replay of every whole-batch prefix.
	replay, err := loom.New(opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	prefix := make([]map[int64]int, 0, len(batches)+1)
	prefix = append(prefix, replay.Assignments())
	for _, b := range batches {
		if err := replay.AddBatch(b); err != nil {
			t.Fatal(err)
		}
		prefix = append(prefix, replay.Assignments())
	}

	// One producer keeps the batch-prefix set linear; the readers race it.
	p, err := loom.New(opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	producerDone := make(chan struct{})
	go func() {
		defer close(producerDone)
		for _, b := range batches {
			if err := p.AddBatch(b); err != nil {
				t.Errorf("AddBatch: %v", err)
				return
			}
		}
	}()

	type placement struct {
		v    int64
		part int
	}
	const readers = 4
	snaps := make([][]map[int64]int, readers)
	placed := make([][]placement, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for alive := true; alive; i++ {
				select {
				case <-producerDone:
					alive = false
				default:
				}
				// Hammer the point-read path on a sliding set of vertices.
				for j := 0; j < 64; j++ {
					v := edges[(i*64+j*17+r)%len(edges)].U
					if part, ok := p.PartitionOf(v); ok {
						if part < 0 || part >= 4 {
							t.Errorf("reader %d: PartitionOf(%d) = %d out of range", r, v, part)
							return
						}
						if i%8 == 0 {
							placed[r] = append(placed[r], placement{v, part})
						}
					}
				}
				// Periodically capture a full snapshot for prefix checking.
				if i%4 == 0 && len(snaps[r]) < 64 {
					snaps[r] = append(snaps[r], p.Snapshot().Assignments())
				}
			}
		}()
	}
	wg.Wait()
	p.Flush()
	if err := p.Err(); err != nil {
		t.Fatalf("ingest error: %v", err)
	}

	final := p.Assignments()
	matches := func(snap map[int64]int) bool {
		for _, state := range prefix {
			if len(state) != len(snap) {
				continue
			}
			equal := true
			for v, part := range snap {
				if got, ok := state[v]; !ok || got != part {
					equal = false
					break
				}
			}
			if equal {
				return true
			}
		}
		return false
	}
	totalSnaps, totalPlaced := 0, 0
	for r := 0; r < readers; r++ {
		for i, snap := range snaps[r] {
			if !matches(snap) {
				t.Fatalf("reader %d snapshot %d (%d assigned) equals no whole-batch prefix", r, i, len(snap))
			}
		}
		totalSnaps += len(snaps[r])
		for _, pl := range placed[r] {
			if got, ok := final[pl.v]; !ok || got != pl.part {
				t.Fatalf("reader %d saw vertex %d in partition %d, final says %d (ok=%v)",
					r, pl.v, pl.part, got, ok)
			}
		}
		totalPlaced += len(placed[r])
	}
	if totalSnaps == 0 || totalPlaced == 0 {
		t.Fatalf("degenerate run: %d snapshots, %d placements observed", totalSnaps, totalPlaced)
	}
	if len(final) != n {
		t.Fatalf("final assignment has %d of %d vertices", len(final), n)
	}
}

// TestPlacementEventsMirrorAssignment: replaying the EventPlace feed must
// reconstruct the final assignment exactly, with dense sequence numbers,
// and the evict feed must account for every windowed edge.
func TestPlacementEventsMirrorAssignment(t *testing.T) {
	wl := concurrencyWorkload(t)
	edges := concurrencyStream(t, 1200)
	n := distinctVertices(edges)
	p, err := loom.New(loom.Options{Partitions: 4, ExpectedVertices: n, WindowSize: 64}, wl)
	if err != nil {
		t.Fatal(err)
	}

	// Handlers run under the partitioner's ingest lock, so plain appends
	// are already serialised; the final read happens after Flush returns.
	var events []loom.PlacementEvent
	p.OnPlace(func(ev loom.PlacementEvent) { events = append(events, ev) })
	// A second subscriber must see every event too.
	var count int
	p.OnPlace(func(loom.PlacementEvent) { count++ })

	const producers = 4
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []loom.StreamEdge
			for i := w; i < len(edges); i += producers {
				mine = append(mine, edges[i])
			}
			for _, b := range chunk(mine, 43) {
				if err := p.AddBatch(b); err != nil {
					t.Errorf("producer %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	p.Flush()

	if count != len(events) {
		t.Fatalf("second subscriber saw %d events, first %d", count, len(events))
	}
	mirror := map[int64]int{}
	evicted := 0
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d: not dense/in order", i, ev.Seq)
		}
		switch ev.Kind {
		case loom.EventPlace:
			if _, dup := mirror[ev.V]; dup {
				t.Fatalf("vertex %d placed twice", ev.V)
			}
			mirror[ev.V] = ev.Partition
		case loom.EventEvict:
			if ev.Partition != -1 {
				t.Fatalf("evict event carries partition %d", ev.Partition)
			}
			evicted++
		default:
			t.Fatalf("unknown event kind %v", ev.Kind)
		}
	}
	want := p.Assignments()
	if len(mirror) != len(want) {
		t.Fatalf("events placed %d vertices, assignment has %d", len(mirror), len(want))
	}
	for v, part := range want {
		if mirror[v] != part {
			t.Fatalf("vertex %d: events say %d, assignment says %d", v, mirror[v], part)
		}
	}
	st := p.Stats()
	if evicted != st.WindowedEdges {
		t.Fatalf("saw %d evict events, %d edges were windowed", evicted, st.WindowedEdges)
	}
	if st.WindowedEdges == 0 {
		t.Fatal("degenerate run: no edges were windowed")
	}
}

// TestPlacementEventsBaseline: baselines emit place events too (they have
// no window, so no evict events).
func TestPlacementEventsBaseline(t *testing.T) {
	p, err := loom.NewBaseline("hash", loom.Options{Partitions: 2, ExpectedVertices: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var events []loom.PlacementEvent
	p.OnPlace(func(ev loom.PlacementEvent) { events = append(events, ev) })
	if err := p.AddBatch([]loom.StreamEdge{
		{U: 1, LU: "a", V: 2, LV: "b"},
		{U: 2, LU: "b", V: 3, LV: "a"},
	}); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3 placements", len(events))
	}
	for _, ev := range events {
		if ev.Kind != loom.EventPlace {
			t.Fatalf("baseline emitted non-place event %+v", ev)
		}
		if got, ok := p.PartitionOf(ev.V); !ok || got != ev.Partition {
			t.Fatalf("event %+v disagrees with PartitionOf (%d, %v)", ev, got, ok)
		}
	}
}

// TestStickyIngestErrors: corrupt input (a label conflict) is returned by
// AddBatch/AddEdgeE, retained by Err, and does not poison the rest of the
// stream; AddEdge keeps its historical panic.
func TestStickyIngestErrors(t *testing.T) {
	wl := loom.NewWorkload("social")
	wl.Add("fof", loom.Path("person", "person", "person"), 1.0)
	p, err := loom.New(loom.Options{Partitions: 2, ExpectedVertices: 16, WindowSize: 4}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("fresh partitioner has sticky error %v", err)
	}
	batch := []loom.StreamEdge{
		{U: 1, LU: "person", V: 2, LV: "person"},
		{U: 1, LU: "city", V: 3, LV: "person"}, // vertex 1 relabelled: corrupt
		{U: 2, LU: "person", V: 3, LV: "person"},
	}
	batchErr := p.AddBatch(batch)
	if batchErr == nil {
		t.Fatal("label conflict: want error from AddBatch")
	}
	if !strings.Contains(batchErr.Error(), "label") {
		t.Errorf("error should describe the conflict, got %v", batchErr)
	}
	if got := p.Err(); got == nil || got.Error() != batchErr.Error() {
		t.Errorf("Err() = %v, want the first batch error %v", got, batchErr)
	}
	// The valid edges of the batch were still processed.
	p.Flush()
	for _, v := range []int64{1, 2, 3} {
		if _, ok := p.PartitionOf(v); !ok {
			t.Errorf("vertex %d unassigned after partial batch", v)
		}
	}
	// AddEdgeE returns the error; Err keeps the first.
	if err := p.AddEdgeE(2, "city", 4, "person"); err == nil {
		t.Error("AddEdgeE label conflict: want error")
	}
	if got := p.Err(); got == nil || got.Error() != batchErr.Error() {
		t.Errorf("Err() changed to %v, want sticky first error", got)
	}
	// AddEdge still panics for compatibility.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddEdge on corrupt input should panic")
			}
		}()
		p.AddEdge(3, "city", 5, "person")
	}()
}

// TestSnapshotImmutable: a snapshot must not change as ingest continues.
func TestSnapshotImmutable(t *testing.T) {
	wl := concurrencyWorkload(t)
	edges := concurrencyStream(t, 1000)
	n := distinctVertices(edges)
	p, err := loom.New(loom.Options{Partitions: 4, ExpectedVertices: n, WindowSize: 32}, wl)
	if err != nil {
		t.Fatal(err)
	}
	half := edges[:len(edges)/2]
	if err := p.AddBatch(half); err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()
	before := snap.Assignments()
	beforeSizes := snap.Sizes()

	if err := p.AddBatch(edges[len(edges)/2:]); err != nil {
		t.Fatal(err)
	}
	p.Flush()

	after := snap.Assignments()
	if len(after) != len(before) {
		t.Fatalf("snapshot grew from %d to %d assignments", len(before), len(after))
	}
	for v, part := range before {
		if after[v] != part {
			t.Fatalf("snapshot placement of %d changed %d → %d", v, part, after[v])
		}
	}
	for i, s := range snap.Sizes() {
		if s != beforeSizes[i] {
			t.Fatalf("snapshot sizes changed: %v → %v", beforeSizes, snap.Sizes())
		}
	}
	if snap.Partitions() != 4 || snap.Name() != "loom" {
		t.Errorf("snapshot metadata: k=%d name=%q", snap.Partitions(), snap.Name())
	}
	if snap.Imbalance() < 0 {
		t.Errorf("negative imbalance %v", snap.Imbalance())
	}
	// Each enumerates exactly the snapshot's assignments.
	seen := 0
	snap.Each(func(v int64, part int) {
		seen++
		if before[v] != part {
			t.Fatalf("Each(%d)=%d disagrees with Assignments %d", v, part, before[v])
		}
	})
	if seen != len(before) {
		t.Fatalf("Each visited %d, want %d", seen, len(before))
	}
}
