package router

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"loom"
)

// shipDir copies a synced WAL directory — the state-shipping step a real
// deployment does with an object store or rsync. The files are
// CRC-framed, so a torn copy is detected at the replica, not replayed.
func shipDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLateReplicaSpliceMatchesPrimary is the serving tier's core
// guarantee, verified under -race: a replica that joins late — recovering
// a mid-stream checkpoint plus WAL tail from a shipped directory, then
// splicing its mirror onto the live event feed via Attach — answers every
// routed lookup identically to the primary's final assignment, and its
// mid-catch-up answers already agree with the primary while the primary
// is still ingesting.
func TestLateReplicaSpliceMatchesPrimary(t *testing.T) {
	wl, err := loom.DatasetWorkload("dblp")
	if err != nil {
		t.Fatalf("DatasetWorkload: %v", err)
	}
	edges, err := loom.GenerateDataset("dblp", 3000, 7)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	root := t.TempDir()
	opt := loom.Options{
		Partitions:       4,
		ExpectedVertices: 4000,
		WindowSize:       256,
		WALDir:           filepath.Join(root, "primary"),
	}
	p, _, err := loom.Open(opt, wl)
	if err != nil {
		t.Fatalf("Open primary: %v", err)
	}
	defer p.Close()

	// half: checkpoint position. ship: where the directory is copied; the
	// replica bootstraps from checkpoint@half + logged tail (half..ship).
	half, ship := len(edges)/2, 5*len(edges)/6
	const producers, batchSize = 4, 128

	// Four producers stream disjoint shards of the first half.
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		shard := edges[w*half/producers : (w+1)*half/producers]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(shard); i += batchSize {
				end := min(i+batchSize, len(shard))
				if err := p.AddBatch(shard[i:end]); err != nil {
					t.Errorf("AddBatch: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if _, err := p.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := half; i < ship; i += batchSize {
		end := min(i+batchSize, ship)
		if err := p.AddBatch(edges[i:end]); err != nil {
			t.Fatalf("AddBatch: %v", err)
		}
	}
	if err := p.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	shipDir(t, opt.WALDir, filepath.Join(root, "replica"))

	// The primary keeps ingesting the last sixth while the late replica
	// bootstraps from the shipped copy.
	liveDone := make(chan struct{})
	go func() {
		defer close(liveDone)
		for i := ship; i < len(edges); i += batchSize {
			end := min(i+batchSize, len(edges))
			if err := p.AddBatch(edges[i:end]); err != nil {
				t.Errorf("AddBatch live tail: %v", err)
			}
		}
	}()

	ropt := opt
	ropt.WALDir = filepath.Join(root, "replica")
	replica, info, err := loom.Open(ropt, wl)
	if err != nil {
		t.Fatalf("Open replica: %v", err)
	}
	defer replica.Close()
	if !info.Recovered || info.CheckpointLSN == 0 || info.ReplayedRecords == 0 {
		t.Fatalf("replica did not bootstrap from checkpoint + tail: %+v", info)
	}

	// Attach splices the mirror mid-stream: the pinned generation covers
	// everything recovered from the shipped state, the live feed covers
	// everything the replica ingests from here on.
	m := New()
	m.Attach(replica)
	if !m.Ready() {
		t.Fatal("mirror not ready after Attach")
	}

	// Mid-catch-up agreement, while the primary is still ingesting:
	// placements are write-once, so every vertex the replica recovered
	// must route exactly where the live primary put it.
	rsnap := replica.Snapshot()
	if rsnap.NumAssigned() == 0 {
		t.Fatal("replica recovered no placements")
	}
	rsnap.Each(func(v int64, part int) {
		if d := m.Lookup(v); !d.Found || d.Partition != part {
			t.Fatalf("mid-catch-up Lookup(%d) = %+v, want partition %d", v, d, part)
		}
		if got, ok := p.PartitionOf(v); !ok || got != part {
			t.Fatalf("replica placed %d in %d, live primary says %d (ok=%v)", v, part, got, ok)
		}
	})

	// Replica tails the rest of the stream (in a deployment: the shipped
	// segments the primary wrote after the copy) with concurrent lookups
	// hammering the mirror — the -race half of the guarantee.
	queryDone := make(chan struct{})
	var reads sync.WaitGroup
	for r := 0; r < 2; r++ {
		reads.Add(1)
		go func(seed int64) {
			defer reads.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-queryDone:
					return
				default:
					m.Lookup(edges[rng.Intn(len(edges))].U)
					m.Pin(replica.Snapshot())
				}
			}
		}(int64(r))
	}
	for i := ship; i < len(edges); i += batchSize {
		end := min(i+batchSize, len(edges))
		if err := replica.AddBatch(edges[i:end]); err != nil {
			t.Fatalf("replica AddBatch: %v", err)
		}
	}
	replica.Flush()
	close(queryDone)
	reads.Wait()

	<-liveDone
	p.Flush()
	if err := p.Err(); err != nil {
		t.Fatalf("primary error: %v", err)
	}
	if err := replica.Err(); err != nil {
		t.Fatalf("replica error: %v", err)
	}

	// Every routed answer matches the primary's final assignment.
	final := p.Snapshot()
	if got := replica.Snapshot().NumAssigned(); got != final.NumAssigned() {
		t.Fatalf("replica finished with %d placements, primary %d", got, final.NumAssigned())
	}
	final.Each(func(v int64, part int) {
		if d := m.Lookup(v); !d.Found || d.Partition != part {
			t.Fatalf("final Lookup(%d) = %+v, want partition %d", v, d, part)
		}
	})
	if st := m.Stats(); st.Gaps != 0 || st.Lost != 0 {
		t.Fatalf("splice produced event gaps: %+v", st)
	}
}

// TestFollowerMirrorTailsPrimary runs the -follow serving mode: a
// read-only loom.Follow over the primary's own WAL directory, polled
// while the primary is still appending, with a mirror attached to the
// follower's event feed and lookups racing the polls. Once the primary
// closes, the caught-up mirror must agree with its final assignment.
func TestFollowerMirrorTailsPrimary(t *testing.T) {
	wl, err := loom.DatasetWorkload("dblp")
	if err != nil {
		t.Fatalf("DatasetWorkload: %v", err)
	}
	edges, err := loom.GenerateDataset("dblp", 2400, 21)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	opt := loom.Options{
		Partitions:       4,
		ExpectedVertices: 4000,
		WindowSize:       256,
		WALDir:           t.TempDir(),
		// Every accepted call is immediately durable and thus visible to
		// the tailer; no group-commit staging between the processes.
		WALSync: loom.WALSyncAlways,
	}
	p, _, err := loom.Open(opt, wl)
	if err != nil {
		t.Fatalf("Open primary: %v", err)
	}

	// First half lands before the follower exists; checkpoint so the
	// follower bootstraps mid-stream instead of replaying from LSN 1.
	half := len(edges) / 2
	const batchSize = 128
	for i := 0; i < half; i += batchSize {
		end := min(i+batchSize, half)
		if err := p.AddBatch(edges[i:end]); err != nil {
			t.Fatalf("AddBatch: %v", err)
		}
	}
	if _, err := p.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	f, info, err := loom.Follow(opt, wl)
	if err != nil {
		t.Fatalf("Follow: %v", err)
	}
	defer f.Close()
	if !info.Recovered || info.CheckpointLSN == 0 {
		t.Fatalf("follower did not bootstrap from the checkpoint: %+v", info)
	}

	m := New()
	m.Attach(f.Partitioner())

	// Primary streams the second half while the follower polls and two
	// readers route against the mirror.
	primaryDone := make(chan struct{})
	go func() {
		defer close(primaryDone)
		for i := half; i < len(edges); i += batchSize {
			end := min(i+batchSize, len(edges))
			if err := p.AddBatch(edges[i:end]); err != nil {
				t.Errorf("primary AddBatch: %v", err)
			}
		}
		p.Flush()
	}()
	stopReads := make(chan struct{})
	var reads sync.WaitGroup
	for r := 0; r < 2; r++ {
		reads.Add(1)
		go func(seed int64) {
			defer reads.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stopReads:
					return
				default:
					m.Lookup(edges[rng.Intn(len(edges))].V)
				}
			}
		}(int64(100 + r))
	}
	for alive := true; alive; {
		select {
		case <-primaryDone:
			alive = false
		default:
		}
		if _, err := f.Poll(); err != nil {
			t.Fatalf("Poll: %v", err)
		}
	}
	if err := p.Close(); err != nil { // final sync: everything is on disk
		t.Fatalf("Close primary: %v", err)
	}
	for {
		n, err := f.Poll()
		if err != nil {
			t.Fatalf("final Poll: %v", err)
		}
		if n == 0 {
			break
		}
	}
	close(stopReads)
	reads.Wait()

	// The follower's partitioner refuses direct ingest.
	if err := f.Partitioner().AddBatch(edges[:1]); err == nil {
		t.Fatal("follower accepted direct AddBatch")
	}

	final := p.Snapshot()
	fp := f.Partitioner()
	if got := fp.Snapshot().NumAssigned(); got != final.NumAssigned() {
		t.Fatalf("follower holds %d placements, primary %d", got, final.NumAssigned())
	}
	// The mirror resolves pre-attach placements through the pinned
	// generation and post-attach ones through the live feed; re-pin once
	// so even flush-tail placements that raced the last poll resolve.
	m.Pin(fp.Snapshot())
	final.Each(func(v int64, part int) {
		if d := m.Lookup(v); !d.Found || d.Partition != part {
			t.Fatalf("follower Lookup(%d) = %+v, want partition %d", v, d, part)
		}
	})
	if st := m.Stats(); st.Gaps != 0 || st.Lost != 0 {
		t.Fatalf("follower feed produced gaps: %+v", st)
	}
}
