package router

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"loom"
	"loom/internal/wal"
)

// supervisedRig is the shared harness: a primary on a fault-scriptable
// in-memory filesystem, a mirror, and a supervisor re-bootstrapping
// followers over the same filesystem.
type supervisedRig struct {
	fs     *wal.MemFS
	wl     *loom.Workload
	edges  []loom.StreamEdge
	opt    loom.Options
	p      *loom.Partitioner
	m      *Mirror
	sup    *Supervisor
	cancel context.CancelFunc
	done   chan error
}

func newSupervisedRig(t *testing.T, keepCkpts int, seed int64) *supervisedRig {
	t.Helper()
	wl, err := loom.DatasetWorkload("dblp")
	if err != nil {
		t.Fatalf("DatasetWorkload: %v", err)
	}
	edges, err := loom.GenerateDataset("dblp", 1500, seed)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	r := &supervisedRig{
		fs:    wal.NewMemFS(),
		wl:    wl,
		edges: edges,
		opt: loom.Options{
			Partitions:       4,
			ExpectedVertices: 3000,
			WindowSize:       128,
			WALDir:           "wal",
			// Every accepted batch is immediately durable and visible to
			// the tailer; small segments force frequent rotation so gap
			// and corruption scenarios span real segment chains.
			WALSync:            loom.WALSyncAlways,
			WALSegmentBytes:    2048,
			WALKeepCheckpoints: keepCkpts,
		},
	}
	r.p, _, err = loom.OpenFS(r.fs, r.opt, wl)
	if err != nil {
		t.Fatalf("OpenFS primary: %v", err)
	}
	t.Cleanup(func() { r.p.Close() })
	return r
}

// start runs the supervisor on its own goroutine, as cmd/loom-router
// does.
func (r *supervisedRig) start(t *testing.T) {
	t.Helper()
	r.m = New()
	boot := func() (*loom.Follower, loom.RecoveryInfo, error) {
		return loom.FollowFS(r.fs, r.opt, r.wl)
	}
	r.sup = NewSupervisor(r.m, boot, SupervisorConfig{
		Poll:       2 * time.Millisecond,
		BackoffMin: time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
		Logf:       t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.done = make(chan error, 1)
	go func() { r.done <- r.sup.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-r.done:
			if err != nil {
				t.Errorf("supervisor Run: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("supervisor did not stop on cancellation")
		}
	})
}

func (r *supervisedRig) ingest(t *testing.T, from, to int) {
	t.Helper()
	const batch = 16
	for i := from; i < to; i += batch {
		end := min(i+batch, to)
		if err := r.p.AddBatch(r.edges[i:end]); err != nil {
			t.Fatalf("AddBatch[%d:%d]: %v", i, end, err)
		}
	}
}

func (r *supervisedRig) checkpoint(t *testing.T) {
	t.Helper()
	if _, err := r.p.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
}

// waitFor polls cond for up to 10s — generous because the suite runs
// under -race.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// verifyConverged waits until the supervised follower holds exactly the
// primary's placements, then checks every routed answer matches the
// primary's final assignment — the "never a wrong route" guarantee.
func (r *supervisedRig) verifyConverged(t *testing.T) {
	t.Helper()
	r.p.Flush()
	final := r.p.Snapshot()
	waitFor(t, "follower convergence", func() bool {
		fp := r.sup.Partitioner()
		return fp != nil && fp.Snapshot().NumAssigned() == final.NumAssigned() &&
			r.sup.State() == StateHealthy
	})
	final.Each(func(v int64, part int) {
		if d := r.m.Lookup(v); !d.Found || d.Partition != part {
			t.Fatalf("after heal Lookup(%d) = %+v, want partition %d", v, d, part)
		}
	})
	if st := r.m.Stats(); st.Gaps != 0 || st.Lost != 0 {
		t.Fatalf("mirror left with unhealed gaps: %+v", st)
	}
}

// TestSupervisorRebootstrapOnGap: the follower stalls on injected read
// errors while the primary checkpoints twice and prunes the segments the
// follower still needs. When reads recover, Poll hits ErrWALGap and the
// supervisor must re-bootstrap from the newer checkpoint and converge to
// Healthy with every route agreeing with the primary.
func TestSupervisorRebootstrapOnGap(t *testing.T) {
	r := newSupervisedRig(t, 1, 7) // keep 1 checkpoint: prune aggressively
	third := len(r.edges) / 3

	r.ingest(t, 0, third)
	r.checkpoint(t)
	r.start(t)
	waitFor(t, "initial catch-up", func() bool { return r.sup.State() == StateHealthy })
	if !r.m.Ready() {
		t.Fatal("mirror not ready after first healthy poll")
	}

	// Stall the follower: every segment read fails until cleared.
	r.fs.SetReadFault(".seg", -1, nil)
	waitFor(t, "degraded on transient faults", func() bool {
		return r.sup.Stats().Transients > 0 && r.sup.State() == StateDegraded
	})

	// Primary advances and prunes past the stalled follower.
	r.ingest(t, third, 2*third)
	r.checkpoint(t)
	r.ingest(t, 2*third, len(r.edges))
	r.checkpoint(t)

	r.fs.SetReadFault("", 0, nil)
	waitFor(t, "re-bootstrap after gap", func() bool {
		st := r.sup.Stats()
		return st.Rebootstraps >= 1 && st.Gaps >= 1
	})
	r.verifyConverged(t)

	if err := r.p.Err(); err != nil {
		t.Fatalf("primary error: %v", err)
	}
}

// TestSupervisorQuarantinesCorruptSegment: a rotated segment the stalled
// follower has not consumed yet rots on disk (one flipped bit). Poll
// must classify it as corruption, quarantine the segment by name, and
// re-bootstrap from the checkpoint written past the damage.
func TestSupervisorQuarantinesCorruptSegment(t *testing.T) {
	r := newSupervisedRig(t, 4, 11) // retain checkpoints: nothing pruned
	third := len(r.edges) / 3

	r.ingest(t, 0, third)
	r.checkpoint(t)
	r.start(t)
	waitFor(t, "initial catch-up", func() bool { return r.sup.State() == StateHealthy })

	r.fs.SetReadFault(".seg", -1, nil)
	waitFor(t, "degraded on transient faults", func() bool {
		return r.sup.State() == StateDegraded
	})

	// Rotate at least three fresh segments past the follower, then flip a
	// bit in the second-to-last — complete, mid-chain, unconsumed.
	before := len(segNames(r.fs))
	for i := third; i < len(r.edges) && len(segNames(r.fs)) < before+3; i += 16 {
		r.ingest(t, i, min(i+16, len(r.edges)))
	}
	segs := segNames(r.fs)
	if len(segs) < before+3 {
		t.Fatalf("stream too small to rotate segments: %d -> %d", before, len(segs))
	}
	victim := segs[len(segs)-2]
	if err := r.fs.FlipBit(victim, r.fs.Size(victim)-3); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	// A checkpoint past the damage gives re-bootstrap a clean entry
	// point; with KeepCheckpoints=4 nothing is pruned, so the stalled
	// follower still walks into the rotten segment.
	r.checkpoint(t)

	r.fs.SetReadFault("", 0, nil)
	waitFor(t, "quarantine + re-bootstrap", func() bool {
		st := r.sup.Stats()
		return st.Corruptions >= 1 && st.Rebootstraps >= 1
	})
	st := r.sup.Stats()
	found := false
	for _, q := range st.Quarantined {
		if strings.HasSuffix(victim, q) {
			found = true
		}
	}
	if !found {
		t.Fatalf("flipped segment %s not quarantined: %+v", victim, st.Quarantined)
	}
	r.verifyConverged(t)
}

// TestSupervisorRidesOutTransients: a bounded burst of read errors must
// degrade and then self-recover on the same follower — no re-bootstrap,
// no gap, no corruption.
func TestSupervisorRidesOutTransients(t *testing.T) {
	r := newSupervisedRig(t, 2, 13)
	r.ingest(t, 0, len(r.edges)/2)
	r.checkpoint(t)
	r.start(t)
	waitFor(t, "initial catch-up", func() bool { return r.sup.State() == StateHealthy })

	r.fs.SetReadFault(".seg", 3, errors.New("eio: cold page"))
	waitFor(t, "transients absorbed", func() bool {
		st := r.sup.Stats()
		return st.Transients >= 3 && st.State == "healthy"
	})
	st := r.sup.Stats()
	if st.Rebootstraps != 0 || st.Gaps != 0 || st.Corruptions != 0 {
		t.Fatalf("transient burst escalated: %+v", st)
	}
	r.ingest(t, len(r.edges)/2, len(r.edges))
	r.verifyConverged(t)
}

// segNames lists the segment files currently in the rig's WAL directory
// (full paths, sorted).
func segNames(fs *wal.MemFS) []string {
	var segs []string
	for _, name := range fs.DumpNames() {
		if strings.HasSuffix(name, ".seg") {
			segs = append(segs, name)
		}
	}
	return segs
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want FaultClass
	}{
		{loom.ErrWALGap, FaultGap},
		{fmt.Errorf("poll: %w", loom.ErrWALGap), FaultGap},
		{loom.ErrWALCorrupt, FaultCorrupt},
		{fmt.Errorf("segment: %w", loom.ErrWALCorrupt), FaultCorrupt},
		{loom.ErrWALNoCheckpoint, FaultCorrupt},
		{loom.ErrWALConfig, FaultFatal},
		{errors.New("read wal-0001.seg: EIO"), FaultTransient},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestSupervisorFatalConfigMismatch: a WAL directory written under a
// different partition count must make Run return the error instead of
// retrying forever — retry cannot fix an operator mistake.
func TestSupervisorFatalConfigMismatch(t *testing.T) {
	r := newSupervisedRig(t, 2, 17)
	r.ingest(t, 0, len(r.edges)/4)
	r.checkpoint(t)

	wrong := r.opt
	wrong.Partitions = 8
	m := New()
	sup := NewSupervisor(m, func() (*loom.Follower, loom.RecoveryInfo, error) {
		return loom.FollowFS(r.fs, wrong, r.wl)
	}, SupervisorConfig{Poll: time.Millisecond, BackoffMin: time.Millisecond})
	err := sup.Run(context.Background())
	if !errors.Is(err, loom.ErrWALConfig) {
		t.Fatalf("Run = %v, want ErrWALConfig", err)
	}
}
