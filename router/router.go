// Package router is Loom's placement-serving tier: the piece that turns a
// streaming partitioner into something a distributed graph store can route
// queries against. Khan et al.'s "On Smart Query Routing" is the blueprint
// — decoupled storage nodes, router replicas that bootstrap from shipped
// state, and locality-aware routing of pattern queries — and Loom supplies
// exactly the three feeds such a router needs: a dense-sequenced placement
// event stream (Partitioner.Subscribe), O(1) immutable snapshots
// (Partitioner.Snapshot), and checkpoint+WAL state shipping (loom.Open /
// loom.Follow).
//
// The core type is Mirror: a goroutine-safe vertex → partition table fed by
// the event stream, with dense-sequence gap detection and a pinned routing
// generation (an atomic Snapshot swap) as fallback for vertices whose event
// has not landed yet. A Mirror attached before ingest mirrors everything; a
// Mirror attached mid-stream splices a snapshot onto the live feed using
// Subscribe's resume-point contract; a late-joining replica bootstraps a
// whole Partitioner from a shipped checkpoint+WAL directory (loom.Open on a
// copy, or loom.Follow to tail the primary's directory read-only) and then
// attaches the same way. All three paths converge on the same guarantee:
// placements are write-once, so every routed answer matches the primary's
// assignment.
//
// On top of the mirror, Planner turns a registered motif workload into
// scatter-gather plans: given a seed vertex and a motif name, it walks the
// mirror's evict-edge adjacency sample out to the motif's diameter and
// returns the minimal partition set to contact — neighbours co-located by
// Loom's motif-aware placement beat a naive broadcast. Server exposes
// lookups, batch lookups, scatter plans, stats and a readiness probe over
// HTTP/JSON; cmd/loom-router wraps it into a network service.
package router

import "strconv"

// Source says which structure answered a lookup.
type Source string

const (
	// SourceMirror: the live event mirror held the vertex.
	SourceMirror Source = "mirror"
	// SourceSnapshot: the pinned routing generation held the vertex (its
	// place event predates the mirror's attach, or has not landed yet).
	SourceSnapshot Source = "snapshot"
	// SourceNone: nobody knows the vertex — it is still windowed in Ptemp
	// (or has never been seen). Callers broadcast or consult the ingest
	// tier.
	SourceNone Source = ""
)

// Decision is one routing decision: where to find a vertex.
type Decision struct {
	Vertex    int64  `json:"vertex"`
	Partition int    `json:"partition"` // -1 when not Found
	Found     bool   `json:"found"`
	Source    Source `json:"source,omitempty"`
}

func (d Decision) String() string {
	if !d.Found {
		return "vertex " + strconv.FormatInt(d.Vertex, 10) + " → Ptemp (still windowed)"
	}
	return "vertex " + strconv.FormatInt(d.Vertex, 10) + " → partition " +
		strconv.Itoa(d.Partition) + " (" + string(d.Source) + ")"
}
