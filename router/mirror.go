package router

import (
	"sync"
	"sync/atomic"

	"loom"
)

// maxNeighborSample bounds the per-vertex adjacency sample the mirror
// keeps from evict events. Evicted edges are exactly the motif-relevant
// ones (an edge enters Loom's window only by matching a workload motif),
// so a small sample per vertex is enough for scatter planning without
// mirroring the whole graph.
const maxNeighborSample = 8

// Mirror is a goroutine-safe vertex → partition table kept in sync with a
// Partitioner through its placement event stream, plus a pinned routing
// generation — an immutable Snapshot swapped atomically — as the fallback
// for vertices whose event the mirror has not (or never will have)
// received. The pair is complete: placements are write-once, so a vertex
// is either in the live mirror, in the pinned generation, or still
// windowed in Ptemp.
//
// The mirror has its own lock because event handlers run on the ingesting
// goroutines (under the partitioner's ingest lock) while lookups arrive on
// others. Apply never calls back into the Partitioner — doing so from a
// placement handler would self-deadlock — and the lookup path never
// touches the partitioner's locks at all: routing stays up while ingest
// hammers the write lock.
//
// Sequence accounting: events carry dense Seqs, and Subscribe reports the
// first Seq a mid-stream subscription will observe, so the mirror can
// detect lost or reordered deliveries (Stats.Gaps / Stats.Lost). A gap
// never occurs through the in-process feed; it exists to catch bugs in
// transports that forward events between processes. Heal repins a fresh
// snapshot — which, being write-once state, necessarily covers every
// placement a lost event carried — and clears the counters.
type Mirror struct {
	mu      sync.RWMutex
	table   map[int64]int
	nbrs    map[int64][]int64 // bounded sample of motif-relevant adjacency
	evicted uint64
	applied uint64

	seeded   bool
	firstSeq uint64
	nextSeq  uint64
	gaps     uint64
	lost     uint64

	gen   atomic.Pointer[loom.Snapshot]
	ready atomic.Bool

	lookups      atomic.Uint64
	mirrorHits   atomic.Uint64
	snapshotHits atomic.Uint64
	misses       atomic.Uint64
}

// New returns a detached Mirror. Feed it by passing m.Apply to
// Partitioner.OnPlace / Subscribe yourself, or call Attach to do the full
// mid-stream splice (subscribe + pin + ready) in one step.
func New() *Mirror {
	return &Mirror{
		table: make(map[int64]int),
		nbrs:  make(map[int64][]int64),
	}
}

// Attach splices the mirror onto p's live feed, correctly even while other
// goroutines are ingesting: it subscribes Apply, pins a Snapshot taken
// after the subscription (Subscribe's contract: that snapshot covers every
// placement whose event predates the returned firstSeq), and marks the
// mirror ready. From this point every vertex p has placed — before or
// after the attach — resolves through Lookup. Returns the first event
// sequence number the live feed will deliver.
func (m *Mirror) Attach(p *loom.Partitioner) (firstSeq uint64) {
	firstSeq = p.Subscribe(m.Apply)
	m.mu.Lock()
	if !m.seeded {
		// No event has raced in between Subscribe returning and this
		// lock: seed the dense-sequence check ourselves.
		m.seeded = true
		m.nextSeq = firstSeq
	}
	m.firstSeq = firstSeq
	m.mu.Unlock()
	m.Pin(p.Snapshot())
	m.ready.Store(true)
	return firstSeq
}

// Splice re-attaches the mirror to a freshly bootstrapped partitioner —
// the supervisor's re-bootstrap path after a WAL gap or corruption killed
// the old follower. Unlike Attach it force-reseeds the dense-sequence
// check: the new feed's seqs restart at the bootstrap checkpoint's event
// seq, at or behind what the mirror already applied, and that overlap is
// not a gap. Re-delivered events overwrite table entries with identical
// values (placements are write-once), and the Heal with a snapshot taken
// after the subscription pins a generation covering everything the old
// feed lost. Readiness is left untouched: the mirror keeps serving its
// applied state throughout the splice.
func (m *Mirror) Splice(p *loom.Partitioner) (firstSeq uint64) {
	firstSeq = p.Subscribe(m.Apply)
	m.mu.Lock()
	m.seeded = true
	m.firstSeq = firstSeq
	m.nextSeq = firstSeq
	m.mu.Unlock()
	m.Heal(p.Snapshot())
	return firstSeq
}

// Apply is the placement event handler: O(1), no partitioner calls. It is
// exported so a Mirror can be wired to OnPlace/Subscribe directly (or to a
// replayed event feed in tests); most callers use Attach.
func (m *Mirror) Apply(ev loom.PlacementEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.seeded {
		m.seeded = true
		m.nextSeq = ev.Seq
	}
	if ev.Seq != m.nextSeq {
		m.gaps++
		if ev.Seq > m.nextSeq {
			m.lost += ev.Seq - m.nextSeq
		}
		m.nextSeq = ev.Seq
	}
	m.nextSeq++
	m.applied++
	switch ev.Kind {
	case loom.EventPlace:
		m.table[ev.V] = ev.Partition
	case loom.EventEvict:
		m.evicted++
		m.sampleEdge(ev.V, ev.Other)
		m.sampleEdge(ev.Other, ev.V)
	}
}

// sampleEdge records w as a neighbour of v, up to the per-vertex cap.
// m.mu held for writing.
func (m *Mirror) sampleEdge(v, w int64) {
	s := m.nbrs[v]
	if len(s) >= maxNeighborSample {
		return
	}
	for _, x := range s {
		if x == w {
			return
		}
	}
	m.nbrs[v] = append(s, w)
}

// Pin swaps in a new routing generation. Snapshots are an atomic epoch
// grab on the partitioner side and one pointer store here, so repinning
// at any frequency never stalls ingest or lookups.
func (m *Mirror) Pin(snap *loom.Snapshot) { m.gen.Store(snap) }

// Generation returns the currently pinned routing generation (nil before
// the first Pin).
func (m *Mirror) Generation() *loom.Snapshot { return m.gen.Load() }

// Heal acknowledges detected event gaps: it pins snap as the new routing
// generation and clears the gap counters. Because placements are
// write-once, any snapshot taken after the gap covers every placement the
// lost events carried — the mirror is complete again even though the
// events themselves are gone.
func (m *Mirror) Heal(snap *loom.Snapshot) {
	m.Pin(snap)
	m.mu.Lock()
	m.gaps, m.lost = 0, 0
	m.mu.Unlock()
}

// Ready reports whether the mirror is serving (attach/bootstrap
// complete). The HTTP health endpoint gates on this.
func (m *Mirror) Ready() bool { return m.ready.Load() }

// SetReady marks the mirror serving (or not). Attach sets it
// automatically; manual wirings (OnPlace before ingest, replica
// bootstrap) flip it when their catch-up completes.
func (m *Mirror) SetReady(ok bool) { m.ready.Store(ok) }

// Lookup routes one vertex: the live event mirror first, then the pinned
// generation. Lock-free against ingest — neither path touches the
// partitioner.
func (m *Mirror) Lookup(v int64) Decision {
	m.lookups.Add(1)
	m.mu.RLock()
	part, ok := m.table[v]
	m.mu.RUnlock()
	if ok {
		m.mirrorHits.Add(1)
		return Decision{Vertex: v, Partition: part, Found: true, Source: SourceMirror}
	}
	if snap := m.gen.Load(); snap != nil {
		if part, ok := snap.PartitionOf(v); ok {
			m.snapshotHits.Add(1)
			return Decision{Vertex: v, Partition: part, Found: true, Source: SourceSnapshot}
		}
	}
	m.misses.Add(1)
	return Decision{Vertex: v, Partition: -1, Found: false, Source: SourceNone}
}

// LookupBatch routes many vertices in one call, amortising the read lock
// across the batch.
func (m *Mirror) LookupBatch(vs []int64) []Decision {
	out := make([]Decision, len(vs))
	m.lookups.Add(uint64(len(vs)))
	snap := m.gen.Load()
	m.mu.RLock()
	for i, v := range vs {
		if part, ok := m.table[v]; ok {
			out[i] = Decision{Vertex: v, Partition: part, Found: true, Source: SourceMirror}
		} else {
			out[i] = Decision{Vertex: v, Partition: -1, Found: false}
		}
	}
	m.mu.RUnlock()
	for i := range out {
		if out[i].Found {
			m.mirrorHits.Add(1)
			continue
		}
		if snap != nil {
			if part, ok := snap.PartitionOf(out[i].Vertex); ok {
				out[i].Partition = part
				out[i].Found = true
				out[i].Source = SourceSnapshot
				m.snapshotHits.Add(1)
				continue
			}
		}
		m.misses.Add(1)
	}
	return out
}

// Len returns the number of placements in the live event mirror (the
// pinned generation may cover more).
func (m *Mirror) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.table)
}

// Neighbors returns the mirror's adjacency sample for v: up to
// maxNeighborSample vertices that shared a motif-matched (window-evicted)
// edge with it. The slice is a fresh copy.
func (m *Mirror) Neighbors(v int64) []int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := m.nbrs[v]
	if len(s) == 0 {
		return nil
	}
	out := make([]int64, len(s))
	copy(out, s)
	return out
}

// Stats is a point-in-time summary of the mirror.
type Stats struct {
	Ready    bool   `json:"ready"`
	Vertices int    `json:"vertices"`  // placements in the live mirror
	Sampled  int    `json:"sampled"`   // vertices with an adjacency sample
	Evicted  uint64 `json:"evicted"`   // window evictions observed
	Applied  uint64 `json:"applied"`   // events applied in total
	FirstSeq uint64 `json:"first_seq"` // resume point reported at attach
	NextSeq  uint64 `json:"next_seq"`  // next event Seq the mirror expects
	Gaps     uint64 `json:"gaps"`      // sequence discontinuities seen
	Lost     uint64 `json:"lost"`      // events skipped across those gaps

	Generation    string `json:"generation,omitempty"` // pinned snapshot's partitioner
	GenAssigned   int    `json:"gen_assigned"`         // placements the generation covers
	GenPartitions int    `json:"gen_partitions"`

	Lookups      uint64 `json:"lookups"`
	MirrorHits   uint64 `json:"mirror_hits"`
	SnapshotHits uint64 `json:"snapshot_hits"`
	Misses       uint64 `json:"misses"`
}

// Stats returns current counters. Safe to call at any time from any
// goroutine.
func (m *Mirror) Stats() Stats {
	m.mu.RLock()
	st := Stats{
		Vertices: len(m.table),
		Sampled:  len(m.nbrs),
		Evicted:  m.evicted,
		Applied:  m.applied,
		FirstSeq: m.firstSeq,
		NextSeq:  m.nextSeq,
		Gaps:     m.gaps,
		Lost:     m.lost,
	}
	m.mu.RUnlock()
	st.Ready = m.ready.Load()
	if snap := m.gen.Load(); snap != nil {
		st.Generation = snap.Name()
		st.GenAssigned = snap.NumAssigned()
		st.GenPartitions = snap.Partitions()
	}
	st.Lookups = m.lookups.Load()
	st.MirrorHits = m.mirrorHits.Load()
	st.SnapshotHits = m.snapshotHits.Load()
	st.Misses = m.misses.Load()
	return st
}
