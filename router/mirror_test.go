package router

import (
	"testing"

	"loom"
)

// smallPartitioner builds a tiny finished partitioning to pin snapshots
// from in unit tests.
func smallPartitioner(t *testing.T) *loom.Partitioner {
	t.Helper()
	wl, err := loom.DatasetWorkload("dblp")
	if err != nil {
		t.Fatalf("DatasetWorkload: %v", err)
	}
	p, err := loom.New(loom.Options{Partitions: 4, ExpectedVertices: 2000, WindowSize: 64}, wl)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	edges, err := loom.GenerateDataset("dblp", 800, 11)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	if err := p.AddBatch(edges); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	p.Flush()
	return p
}

func TestMirrorAppliesEvents(t *testing.T) {
	m := New()
	m.Apply(loom.PlacementEvent{Seq: 0, Kind: loom.EventPlace, V: 7, Partition: 2})
	m.Apply(loom.PlacementEvent{Seq: 1, Kind: loom.EventEvict, V: 7, Other: 9, Partition: -1})
	m.Apply(loom.PlacementEvent{Seq: 2, Kind: loom.EventPlace, V: 9, Partition: 2})

	if d := m.Lookup(7); !d.Found || d.Partition != 2 || d.Source != SourceMirror {
		t.Fatalf("Lookup(7) = %+v, want partition 2 from mirror", d)
	}
	if d := m.Lookup(404); d.Found || d.Partition != -1 || d.Source != SourceNone {
		t.Fatalf("Lookup(404) = %+v, want a miss", d)
	}
	if nb := m.Neighbors(7); len(nb) != 1 || nb[0] != 9 {
		t.Fatalf("Neighbors(7) = %v, want [9]", nb)
	}
	if nb := m.Neighbors(9); len(nb) != 1 || nb[0] != 7 {
		t.Fatalf("Neighbors(9) = %v, want [7]", nb)
	}
	st := m.Stats()
	if st.Vertices != 2 || st.Evicted != 1 || st.Applied != 3 || st.NextSeq != 3 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Gaps != 0 || st.Lost != 0 {
		t.Fatalf("dense feed reported gaps: %+v", st)
	}
	if st.Lookups != 2 || st.MirrorHits != 1 || st.Misses != 1 {
		t.Fatalf("lookup counters wrong: %+v", st)
	}
}

func TestMirrorNeighborSampleIsBounded(t *testing.T) {
	m := New()
	for i := 0; i < 3*maxNeighborSample; i++ {
		m.Apply(loom.PlacementEvent{Seq: uint64(i), Kind: loom.EventEvict, V: 1, Other: int64(100 + i), Partition: -1})
	}
	if nb := m.Neighbors(1); len(nb) != maxNeighborSample {
		t.Fatalf("sample for vertex 1 has %d neighbours, want the %d cap", len(nb), maxNeighborSample)
	}
	// Duplicate edges don't consume sample slots.
	m2 := New()
	for i := 0; i < 5; i++ {
		m2.Apply(loom.PlacementEvent{Seq: uint64(i), Kind: loom.EventEvict, V: 1, Other: 2, Partition: -1})
	}
	if nb := m2.Neighbors(1); len(nb) != 1 {
		t.Fatalf("duplicate edge sampled %d times", len(nb))
	}
}

func TestMirrorGapDetectionAndHeal(t *testing.T) {
	m := New()
	m.Apply(loom.PlacementEvent{Seq: 0, Kind: loom.EventPlace, V: 1, Partition: 0})
	m.Apply(loom.PlacementEvent{Seq: 1, Kind: loom.EventPlace, V: 2, Partition: 1})
	// Seqs 2..4 vanish in a hypothetical lossy transport.
	m.Apply(loom.PlacementEvent{Seq: 5, Kind: loom.EventPlace, V: 6, Partition: 1})

	st := m.Stats()
	if st.Gaps != 1 || st.Lost != 3 {
		t.Fatalf("gap accounting = gaps %d lost %d, want 1/3", st.Gaps, st.Lost)
	}
	if st.NextSeq != 6 {
		t.Fatalf("NextSeq = %d, want 6 (resynced past the gap)", st.NextSeq)
	}

	// Heal: pin a snapshot (write-once placements make any post-gap
	// snapshot complete) and the counters clear.
	p := smallPartitioner(t)
	m.Heal(p.Snapshot())
	st = m.Stats()
	if st.Gaps != 0 || st.Lost != 0 {
		t.Fatalf("Heal left counters: %+v", st)
	}
	if m.Generation() == nil {
		t.Fatal("Heal did not pin the snapshot")
	}
}

func TestMirrorSnapshotFallback(t *testing.T) {
	p := smallPartitioner(t)
	snap := p.Snapshot()
	if snap.NumAssigned() == 0 {
		t.Fatal("test partitioner assigned nothing")
	}

	// A mirror with an empty live table but a pinned generation resolves
	// every placed vertex through the snapshot.
	m := New()
	m.Pin(snap)
	snap.Each(func(v int64, part int) {
		if d := m.Lookup(v); !d.Found || d.Partition != part || d.Source != SourceSnapshot {
			t.Fatalf("Lookup(%d) = %+v, want partition %d from snapshot", v, d, part)
		}
	})

	// A live-mirror hit takes precedence over the generation.
	var probe int64
	snap.Each(func(v int64, _ int) { probe = v })
	m.Apply(loom.PlacementEvent{Seq: 0, Kind: loom.EventPlace, V: probe, Partition: 3})
	if d := m.Lookup(probe); d.Source != SourceMirror || d.Partition != 3 {
		t.Fatalf("live mirror did not take precedence: %+v", d)
	}
}

func TestLookupBatchMatchesLookup(t *testing.T) {
	p := smallPartitioner(t)
	m := New()
	m.Attach(p)

	vs := []int64{1, 2, 3, 1 << 40, 5, 6, 7}
	batch := m.LookupBatch(vs)
	if len(batch) != len(vs) {
		t.Fatalf("LookupBatch returned %d decisions for %d vertices", len(batch), len(vs))
	}
	for i, v := range vs {
		if one := m.Lookup(v); one != batch[i] {
			t.Fatalf("vertex %d: batch %+v != single %+v", v, batch[i], one)
		}
	}
}

func TestAttachBeforeIngestMirrorsEverything(t *testing.T) {
	wl, err := loom.DatasetWorkload("dblp")
	if err != nil {
		t.Fatalf("DatasetWorkload: %v", err)
	}
	p, err := loom.New(loom.Options{Partitions: 4, ExpectedVertices: 2000, WindowSize: 64}, wl)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := New()
	if first := m.Attach(p); first != 0 {
		t.Fatalf("Attach before ingest reported firstSeq %d, want 0", first)
	}
	if !m.Ready() {
		t.Fatal("Attach did not mark the mirror ready")
	}

	edges, err := loom.GenerateDataset("dblp", 800, 12)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	if err := p.AddBatch(edges); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	p.Flush()

	snap := p.Snapshot()
	if m.Len() != snap.NumAssigned() {
		t.Fatalf("mirror holds %d placements, partitioner %d", m.Len(), snap.NumAssigned())
	}
	snap.Each(func(v int64, part int) {
		if d := m.Lookup(v); !d.Found || d.Partition != part {
			t.Fatalf("Lookup(%d) = %+v, want partition %d", v, d, part)
		}
	})
	if st := m.Stats(); st.Gaps != 0 || st.Lost != 0 {
		t.Fatalf("in-process feed produced gaps: %+v", st)
	}
}
