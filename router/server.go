package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// maxBatch bounds one /route/batch request.
const maxBatch = 65536

// Server exposes a Mirror (and optionally a Planner) over HTTP/JSON:
//
//	GET  /route/{vertex}                 one routing decision
//	POST /route/batch                    JSON array of vertex ids → decisions
//	GET  /route/scatter?seed=V&motif=Q   scatter-gather plan for a motif query
//	GET  /stats                          mirror + planner counters
//	GET  /healthz                        200 once catch-up completed, else 503
//
// It is an http.Handler; wrap it in an http.Server (cmd/loom-router does)
// or mount it under a prefix. All responses are JSON except /healthz's
// plain "ok". Requests against a not-yet-ready mirror still answer — a
// replica mid-catch-up serves what it has — only /healthz reports the
// distinction, so load balancers drain traffic while the mirror is behind.
type Server struct {
	mirror  *Mirror
	planner *Planner // nil: /route/scatter answers 501
	mux     *http.ServeMux
}

// NewServer builds the handler. planner may be nil when no workload is
// registered (scatter planning needs motif diameters).
func NewServer(m *Mirror, planner *Planner) *Server {
	s := &Server{mirror: m, planner: planner, mux: http.NewServeMux()}
	// Literal patterns win over the {vertex} wildcard, so /route/batch and
	// /route/scatter are not shadowed (vertex ids are integers anyway).
	s.mux.HandleFunc("GET /route/{vertex}", s.handleRoute)
	s.mux.HandleFunc("POST /route/batch", s.handleBatch)
	s.mux.HandleFunc("GET /route/scatter", s.handleScatter)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type httpError struct {
	Error string `json:"error"`
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	v, err := strconv.ParseInt(r.PathValue("vertex"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{fmt.Sprintf("vertex must be an integer id: %v", err)})
		return
	}
	writeJSON(w, http.StatusOK, s.mirror.Lookup(v))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var vs []int64
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	if err := dec.Decode(&vs); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{fmt.Sprintf("body must be a JSON array of vertex ids: %v", err)})
		return
	}
	if len(vs) > maxBatch {
		writeJSON(w, http.StatusRequestEntityTooLarge, httpError{fmt.Sprintf("batch of %d exceeds the %d limit", len(vs), maxBatch)})
		return
	}
	writeJSON(w, http.StatusOK, s.mirror.LookupBatch(vs))
}

func (s *Server) handleScatter(w http.ResponseWriter, r *http.Request) {
	if s.planner == nil {
		writeJSON(w, http.StatusNotImplemented, httpError{"no workload registered: scatter planning is unavailable"})
		return
	}
	seed, err := strconv.ParseInt(r.URL.Query().Get("seed"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{fmt.Sprintf("seed must be an integer vertex id: %v", err)})
		return
	}
	motif := r.URL.Query().Get("motif")
	if motif == "" {
		writeJSON(w, http.StatusBadRequest, httpError{"motif query parameter is required"})
		return
	}
	plan, err := s.planner.Scatter(seed, motif)
	if err != nil {
		writeJSON(w, http.StatusNotFound, httpError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, plan)
}

// statsReply is the /stats payload: the mirror's counters plus the
// planner's registered motifs.
type statsReply struct {
	Mirror Stats        `json:"mirror"`
	Motifs []motifReply `json:"motifs,omitempty"`
}

type motifReply struct {
	Name     string  `json:"name"`
	Freq     float64 `json:"freq"`
	Edges    int     `json:"edges"`
	Diameter int     `json:"diameter"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	reply := statsReply{Mirror: s.mirror.Stats()}
	if s.planner != nil {
		for _, q := range s.planner.Motifs() {
			reply.Motifs = append(reply.Motifs, motifReply{Name: q.Name, Freq: q.Freq, Edges: q.Edges, Diameter: q.Diameter})
		}
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.mirror.Ready() {
		http.Error(w, "catching up", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
