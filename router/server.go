package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// ServerConfig bounds the serving tier so overload degrades into fast,
// explicit rejections instead of pile-ups. The zero value gets defaults
// from NewServerWith.
type ServerConfig struct {
	// Timeout is the per-request handler deadline (http.TimeoutHandler):
	// a stuck handler answers 503 after this long instead of holding its
	// connection forever. Default 5s; negative disables.
	Timeout time.Duration
	// MaxInFlight caps concurrently executing /route/* requests; excess
	// requests are shed immediately with 503 + Retry-After rather than
	// queued (queues under overload only add latency to eventual
	// failures). /stats and /healthz are never gated — operators and load
	// balancers must see an overloaded server, not a dead one. Default
	// 256; negative disables.
	MaxInFlight int
	// MaxBatch caps one /route/batch request's vertex count. Default
	// 65536.
	MaxBatch int
	// Supervisor, when the server fronts a supervised -follow replica,
	// feeds /healthz (not ready vs degraded vs ok) and /stats.
	Supervisor *Supervisor
	// Delay artificially stretches each route request by this much —
	// a test hook for exercising drain and shed behaviour with real
	// in-flight requests.
	Delay time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 65536
	}
	return c
}

// Server exposes a Mirror (and optionally a Planner) over HTTP/JSON:
//
//	GET  /route/{vertex}                 one routing decision
//	POST /route/batch                    JSON array of vertex ids → decisions
//	GET  /route/scatter?seed=V&motif=Q   scatter-gather plan for a motif query
//	GET  /stats                          mirror + supervisor + server counters
//	GET  /healthz                        503 until first catch-up, then 200
//	                                     ("ok", or "degraded: ..." while the
//	                                     supervisor is riding out a fault)
//
// It is an http.Handler; wrap it in an http.Server (cmd/loom-router does)
// or mount it under a prefix. All responses are JSON except /healthz's
// plain text. Requests against a not-yet-ready mirror still answer — a
// replica mid-catch-up serves what it has — only /healthz reports the
// distinction, so load balancers drain traffic while the mirror is
// behind. Route endpoints are bounded: per-request timeout, an in-flight
// cap that sheds excess load with 503 + Retry-After, and a batch-size
// limit (ServerConfig).
type Server struct {
	mirror  *Mirror
	planner *Planner // nil: /route/scatter answers 501
	cfg     ServerConfig
	mux     *http.ServeMux
	handler http.Handler  // mux, timeout-wrapped when cfg.Timeout > 0
	gate    chan struct{} // nil: unbounded
	shed    atomic.Uint64
}

// NewServer builds a handler with default bounds. planner may be nil
// when no workload is registered (scatter planning needs motif
// diameters).
func NewServer(m *Mirror, planner *Planner) *Server {
	return NewServerWith(m, planner, ServerConfig{})
}

// NewServerWith builds the handler with explicit bounds and an optional
// supervisor for health reporting.
func NewServerWith(m *Mirror, planner *Planner, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{mirror: m, planner: planner, cfg: cfg, mux: http.NewServeMux()}
	if cfg.MaxInFlight > 0 {
		s.gate = make(chan struct{}, cfg.MaxInFlight)
	}
	// Literal patterns win over the {vertex} wildcard, so /route/batch and
	// /route/scatter are not shadowed (vertex ids are integers anyway).
	s.mux.HandleFunc("GET /route/{vertex}", s.gated(s.handleRoute))
	s.mux.HandleFunc("POST /route/batch", s.gated(s.handleBatch))
	s.mux.HandleFunc("GET /route/scatter", s.gated(s.handleScatter))
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.handler = s.mux
	if cfg.Timeout > 0 {
		s.handler = http.TimeoutHandler(s.mux, cfg.Timeout, "request deadline exceeded")
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Shed returns how many route requests were rejected at the in-flight
// gate.
func (s *Server) Shed() uint64 { return s.shed.Load() }

// gated wraps a route handler in the in-flight cap: acquire a slot or
// shed the request immediately — no queueing — with 503 + Retry-After so
// well-behaved clients back off.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	if s.gate == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.gate <- struct{}{}:
			defer func() { <-s.gate }()
			h(w, r)
		default:
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable,
				httpError{fmt.Sprintf("overloaded: %d route requests already in flight", s.cfg.MaxInFlight)})
		}
	}
}

// stall applies the configured artificial delay, cut short if the
// request is cancelled (client gone or deadline hit).
func (s *Server) stall(r *http.Request) {
	if s.cfg.Delay <= 0 {
		return
	}
	t := time.NewTimer(s.cfg.Delay)
	defer t.Stop()
	select {
	case <-r.Context().Done():
	case <-t.C:
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type httpError struct {
	Error string `json:"error"`
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	v, err := strconv.ParseInt(r.PathValue("vertex"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{fmt.Sprintf("vertex must be an integer id: %v", err)})
		return
	}
	s.stall(r)
	writeJSON(w, http.StatusOK, s.mirror.Lookup(v))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var vs []int64
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	if err := dec.Decode(&vs); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{fmt.Sprintf("body must be a JSON array of vertex ids: %v", err)})
		return
	}
	if len(vs) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusRequestEntityTooLarge, httpError{fmt.Sprintf("batch of %d exceeds the %d limit", len(vs), s.cfg.MaxBatch)})
		return
	}
	s.stall(r)
	writeJSON(w, http.StatusOK, s.mirror.LookupBatch(vs))
}

func (s *Server) handleScatter(w http.ResponseWriter, r *http.Request) {
	if s.planner == nil {
		writeJSON(w, http.StatusNotImplemented, httpError{"no workload registered: scatter planning is unavailable"})
		return
	}
	seed, err := strconv.ParseInt(r.URL.Query().Get("seed"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{fmt.Sprintf("seed must be an integer vertex id: %v", err)})
		return
	}
	motif := r.URL.Query().Get("motif")
	if motif == "" {
		writeJSON(w, http.StatusBadRequest, httpError{"motif query parameter is required"})
		return
	}
	plan, err := s.planner.Scatter(seed, motif)
	if err != nil {
		writeJSON(w, http.StatusNotFound, httpError{err.Error()})
		return
	}
	s.stall(r)
	writeJSON(w, http.StatusOK, plan)
}

// statsReply is the /stats payload: the mirror's counters, the serving
// bounds, and — on a supervised -follow replica — the follower
// lifecycle.
type statsReply struct {
	Mirror     Stats            `json:"mirror"`
	Server     serverStats      `json:"server"`
	Supervisor *SupervisorStats `json:"supervisor,omitempty"`
	Motifs     []motifReply     `json:"motifs,omitempty"`
}

type serverStats struct {
	Shed        uint64 `json:"shed"` // route requests rejected at the gate
	MaxInFlight int    `json:"max_inflight"`
	MaxBatch    int    `json:"max_batch"`
	TimeoutMS   int64  `json:"timeout_ms"`
}

type motifReply struct {
	Name     string  `json:"name"`
	Freq     float64 `json:"freq"`
	Edges    int     `json:"edges"`
	Diameter int     `json:"diameter"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	reply := statsReply{
		Mirror: s.mirror.Stats(),
		Server: serverStats{
			Shed:        s.shed.Load(),
			MaxInFlight: s.cfg.MaxInFlight,
			MaxBatch:    s.cfg.MaxBatch,
			TimeoutMS:   s.cfg.Timeout.Milliseconds(),
		},
	}
	if sup := s.cfg.Supervisor; sup != nil {
		st := sup.Stats()
		reply.Supervisor = &st
	}
	if s.planner != nil {
		for _, q := range s.planner.Motifs() {
			reply.Motifs = append(reply.Motifs, motifReply{Name: q.Name, Freq: q.Freq, Edges: q.Edges, Diameter: q.Diameter})
		}
	}
	writeJSON(w, http.StatusOK, reply)
}

// handleHealthz separates three conditions load balancers and operators
// care about:
//
//	503 "not ready: ..."  — never caught up; do not route traffic here
//	200 "degraded: ..."   — serving (possibly stale) while the supervisor
//	                        rides out a fault; keep traffic, page someone
//	200 "ok"              — caught up and fault-free
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sup := s.cfg.Supervisor
	if sup != nil && !sup.EverHealthy() {
		http.Error(w, fmt.Sprintf("not ready: %s", sup.State()), http.StatusServiceUnavailable)
		return
	}
	if sup == nil && !s.mirror.Ready() {
		http.Error(w, "not ready: catching up", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	ms := s.mirror.Stats()
	if sup != nil {
		if st := sup.State(); st != StateHealthy {
			fmt.Fprintf(w, "degraded: follower %s\n", st)
			return
		}
	}
	if ms.Lost > 0 {
		fmt.Fprintf(w, "degraded: %d placement events lost awaiting heal\n", ms.Lost)
		return
	}
	fmt.Fprintln(w, "ok")
}
