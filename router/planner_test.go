package router

import (
	"testing"

	"loom"
)

// motifMirror builds a finished dblp partitioning with an attached mirror
// (so the evict-edge adjacency sample is populated) plus its planner.
func motifMirror(t *testing.T) (*Mirror, *Planner, []loom.StreamEdge, int) {
	t.Helper()
	const k = 4
	wl, err := loom.DatasetWorkload("dblp")
	if err != nil {
		t.Fatalf("DatasetWorkload: %v", err)
	}
	p, err := loom.New(loom.Options{Partitions: k, ExpectedVertices: 4000, WindowSize: 256}, wl)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := New()
	m.Attach(p)
	edges, err := loom.GenerateDataset("dblp", 3000, 5)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	if err := p.AddBatch(edges); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	p.Flush()
	return m, NewPlanner(m, wl.Queries(), k), edges, k
}

func TestScatterBeatsBroadcast(t *testing.T) {
	m, pl, edges, k := motifMirror(t)
	if m.Stats().Evicted == 0 {
		t.Fatal("no window evictions: the adjacency sample is empty, dataset/window mismatch")
	}

	// Every placed seed with a motif neighbourhood must produce a
	// non-broadcast plan whose first contact is the seed's own partition;
	// on a motif-heavy dataset the plans must beat broadcast on average
	// (and strictly, for at least one seed).
	seeds := 0
	narrower := 0
	totalFanout := 0
	seen := map[int64]bool{}
	for _, e := range edges {
		for _, v := range []int64{e.U, e.V} {
			if seen[v] || len(m.Neighbors(v)) == 0 {
				continue
			}
			seen[v] = true
			d := m.Lookup(v)
			if !d.Found {
				continue
			}
			plan, err := pl.Scatter(v, "coauthors")
			if err != nil {
				t.Fatalf("Scatter(%d): %v", v, err)
			}
			if plan.Broadcast {
				t.Fatalf("placed seed %d yielded a broadcast plan", v)
			}
			if plan.Fanout != len(plan.Partitions) || plan.Fanout < 1 || plan.Fanout > k {
				t.Fatalf("plan fanout inconsistent: %+v", plan)
			}
			if plan.Partitions[0] != d.Partition {
				t.Fatalf("plan contacts %v first, seed lives on %d", plan.Partitions[0], d.Partition)
			}
			seeds++
			totalFanout += plan.Fanout
			if plan.Fanout < k {
				narrower++
			}
		}
	}
	if seeds == 0 {
		t.Fatal("no plannable seeds found")
	}
	if narrower == 0 {
		t.Fatalf("all %d plans contact every partition — locality heuristic is not working", seeds)
	}
	if avg := float64(totalFanout) / float64(seeds); avg >= float64(k) {
		t.Fatalf("average fanout %.2f is not below broadcast k=%d", avg, k)
	}
	t.Logf("%d seeds, %d plans narrower than broadcast, average fanout %.2f of k=%d",
		seeds, narrower, float64(totalFanout)/float64(seeds), k)
}

func TestScatterUnknownSeedBroadcasts(t *testing.T) {
	_, pl, _, k := motifMirror(t)
	plan, err := pl.Scatter(1<<40, "coauthors")
	if err != nil {
		t.Fatalf("Scatter: %v", err)
	}
	if !plan.Broadcast || plan.Fanout != k || len(plan.Partitions) != k {
		t.Fatalf("unknown seed should broadcast to all %d partitions: %+v", k, plan)
	}
}

func TestScatterUnknownMotifErrors(t *testing.T) {
	m, pl, _, _ := motifMirror(t)
	_ = m
	if _, err := pl.Scatter(1, "no-such-motif"); err == nil {
		t.Fatal("unknown motif did not error")
	}
}

func TestPlannerMotifs(t *testing.T) {
	_, pl, _, _ := motifMirror(t)
	motifs := pl.Motifs()
	if len(motifs) != 4 {
		t.Fatalf("dblp workload has 4 queries, planner lists %d", len(motifs))
	}
	byName := map[string]loom.QueryInfo{}
	for _, q := range motifs {
		byName[q.Name] = q
	}
	co, ok := byName["coauthors"]
	if !ok {
		t.Fatal("coauthors missing from Motifs")
	}
	if co.Edges != 2 || co.Diameter != 2 {
		t.Fatalf("coauthors path has 2 edges, diameter 2; got %+v", co)
	}
}
