package router

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"loom"
)

// SupervisorState is the follower lifecycle state machine the supervisor
// drives:
//
//	CatchingUp ──► Healthy ◄──► Degraded
//	     ▲            │            │
//	     └── Rebootstrapping ◄─────┘
//
// CatchingUp: bootstrapped, still draining the backlog between the
// checkpoint and the primary's tip. Healthy: a poll drained the log
// completely. Degraded: polls are failing transiently (I/O hiccups);
// the mirror keeps serving its last applied state. Rebootstrapping: the
// follower hit a WAL gap (primary pruned past it) or corruption and is
// being rebuilt from the newest checkpoint.
type SupervisorState int32

const (
	StateCatchingUp SupervisorState = iota
	StateHealthy
	StateDegraded
	StateRebootstrapping
)

func (s SupervisorState) String() string {
	switch s {
	case StateCatchingUp:
		return "catching-up"
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateRebootstrapping:
		return "rebootstrapping"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// FaultClass is the supervisor's triage of a poll or bootstrap error.
type FaultClass int

const (
	// FaultTransient: retry the same follower after a backoff — I/O
	// hiccups, a segment pruned between List and ReadFile, NFS blips.
	FaultTransient FaultClass = iota
	// FaultGap: the primary checkpointed and pruned past the follower's
	// position; only a re-bootstrap from the newer checkpoint recovers.
	FaultGap
	// FaultCorrupt: structural damage in a segment the follower still
	// needs. Re-bootstrap; if the error names the segment, quarantine it.
	FaultCorrupt
	// FaultFatal: no retry can help (checkpoint written under different
	// Options/workload). Run returns the error.
	FaultFatal
)

func (c FaultClass) String() string {
	switch c {
	case FaultTransient:
		return "transient"
	case FaultGap:
		return "gap"
	case FaultCorrupt:
		return "corrupt"
	case FaultFatal:
		return "fatal"
	default:
		return fmt.Sprintf("fault(%d)", int(c))
	}
}

// Classify triages an error from Follower.Poll or a bootstrap attempt.
// Unrecognised errors default to FaultTransient: retrying is harmless,
// and the true state (gap, corruption, recovery) is re-classified on the
// next attempt once the directory is readable again.
func Classify(err error) FaultClass {
	switch {
	case err == nil:
		return FaultTransient
	case errors.Is(err, loom.ErrWALConfig):
		return FaultFatal
	case errors.Is(err, loom.ErrWALGap):
		return FaultGap
	case errors.Is(err, loom.ErrWALCorrupt), errors.Is(err, loom.ErrWALNoCheckpoint):
		return FaultCorrupt
	default:
		return FaultTransient
	}
}

// SupervisorConfig tunes the poll cadence and fault backoff. The zero
// value gets sane defaults from NewSupervisor.
type SupervisorConfig struct {
	// Poll is the steady-state interval between polls while healthy.
	// Default 200ms.
	Poll time.Duration
	// BackoffMin is the first retry delay after a fault. Default 50ms.
	BackoffMin time.Duration
	// BackoffMax caps the exponential backoff. Default 5s.
	BackoffMax time.Duration
	// BackoffFactor multiplies the delay after each consecutive fault.
	// Default 2.
	BackoffFactor float64
	// Seed seeds the backoff jitter; fixed default so runs are
	// reproducible.
	Seed int64
	// Logf, when set, receives state transitions and fault reports.
	Logf func(format string, args ...any)
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.Poll <= 0 {
		c.Poll = 200 * time.Millisecond
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = c.BackoffMin
	}
	if c.BackoffFactor < 1 {
		c.BackoffFactor = 2
	}
	return c
}

// SupervisorStats is a point-in-time summary of the supervised follower,
// embedded in the router's GET /stats reply.
type SupervisorStats struct {
	State       string `json:"state"`
	EverHealthy bool   `json:"ever_healthy"`
	LSN         uint64 `json:"lsn"` // log position applied through

	Polls        uint64 `json:"polls"`
	Records      uint64 `json:"records"` // WAL records applied via Poll
	Transients   uint64 `json:"transients"`
	Gaps         uint64 `json:"gaps"`
	Corruptions  uint64 `json:"corruptions"`
	Rebootstraps uint64 `json:"rebootstraps"`

	// Quarantined lists segment files the supervisor attributed
	// corruption to, so an operator knows what to preserve for forensics
	// before the primary prunes them.
	Quarantined []string `json:"quarantined,omitempty"`
	LastError   string   `json:"last_error,omitempty"`

	// DowntimeMS is the cumulative wall time spent outside Healthy after
	// first reaching it — the serving tier's staleness exposure, not an
	// availability gap (the mirror serves throughout).
	DowntimeMS int64 `json:"downtime_ms"`
}

// Supervisor owns a -follow replica's lifecycle so the serving process
// never has to restart over a recoverable WAL fault. It polls the
// follower on a steady cadence, classifies every error (Classify),
// retries transients under jittered exponential backoff, and on a gap or
// corruption re-bootstraps: a fresh loom.Follow from the newest
// checkpoint, spliced onto the live Mirror (Mirror.Splice) so routing
// never stops serving — the pinned snapshot from the splice covers every
// placement the dead follower had, and staleness is bounded by the
// re-bootstrap time, which SupervisorStats reports as downtime.
type Supervisor struct {
	mirror *Mirror
	boot   func() (*loom.Follower, loom.RecoveryInfo, error)
	cfg    SupervisorConfig

	state atomic.Int32

	mu              sync.Mutex
	f               *loom.Follower
	p               *loom.Partitioner
	rng             *rand.Rand
	everHealthy     bool
	notHealthySince time.Time // zero while Healthy
	downtime        time.Duration
	lastErr         string
	quarantined     map[string]struct{}
	polls           uint64
	records         uint64
	transients      uint64
	gaps            uint64
	corruptions     uint64
	boots           uint64
}

// NewSupervisor wires a supervisor over mirror, (re)building followers
// with boot — typically a closure over loom.Follow(opt, wl). boot is
// called once at Run start and again after every gap/corruption; each
// call must return an independent follower bootstrapped from the newest
// checkpoint.
func NewSupervisor(mirror *Mirror, boot func() (*loom.Follower, loom.RecoveryInfo, error), cfg SupervisorConfig) *Supervisor {
	cfg = cfg.withDefaults()
	return &Supervisor{
		mirror:      mirror,
		boot:        boot,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed + 1)),
		quarantined: make(map[string]struct{}),
	}
}

// State returns the current lifecycle state. Lock-free.
func (s *Supervisor) State() SupervisorState {
	return SupervisorState(s.state.Load())
}

// EverHealthy reports whether the follower has ever fully drained the
// log — the boundary between "not ready yet" (health 503) and "degraded
// but serving" (health 200 with a warning body).
func (s *Supervisor) EverHealthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.everHealthy
}

// Partitioner returns the current follower's read surface, or nil before
// the first successful bootstrap. The mirror remains the routing path;
// this is for snapshot repinning and diagnostics.
func (s *Supervisor) Partitioner() *loom.Partitioner {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p
}

// Stats returns current counters. Safe from any goroutine.
func (s *Supervisor) Stats() SupervisorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SupervisorStats{
		State:       s.State().String(),
		EverHealthy: s.everHealthy,
		Polls:       s.polls,
		Records:     s.records,
		Transients:  s.transients,
		Gaps:        s.gaps,
		Corruptions: s.corruptions,
		LastError:   s.lastErr,
		DowntimeMS:  s.downtimeLocked().Milliseconds(),
	}
	if s.boots > 0 {
		st.Rebootstraps = s.boots - 1
	}
	if s.f != nil {
		st.LSN = s.f.LSN()
	}
	if len(s.quarantined) > 0 {
		st.Quarantined = make([]string, 0, len(s.quarantined))
		for name := range s.quarantined {
			st.Quarantined = append(st.Quarantined, name)
		}
		sort.Strings(st.Quarantined)
	}
	return st
}

// Downtime returns the cumulative time spent outside Healthy since first
// reaching it, including any outage in progress.
func (s *Supervisor) Downtime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.downtimeLocked()
}

// downtimeLocked: s.mu held.
func (s *Supervisor) downtimeLocked() time.Duration {
	d := s.downtime
	if s.everHealthy && !s.notHealthySince.IsZero() {
		d += time.Since(s.notHealthySince)
	}
	return d
}

// setState transitions the lifecycle state, keeping the downtime clock:
// time outside Healthy accrues only after the follower has been Healthy
// once (before that it is bootstrap, not an outage).
func (s *Supervisor) setState(st SupervisorState) {
	old := SupervisorState(s.state.Swap(int32(st)))
	if old == st {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if st == StateHealthy {
		if s.everHealthy && !s.notHealthySince.IsZero() {
			s.downtime += now.Sub(s.notHealthySince)
		}
		s.everHealthy = true
		s.notHealthySince = time.Time{}
	} else if old == StateHealthy {
		s.notHealthySince = now
	}
	s.mu.Unlock()
	s.logf("supervisor: %s -> %s", old, st)
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Run drives the follower until ctx is cancelled. It blocks; callers run
// it on its own goroutine. The initial bootstrap happens inside Run, so
// the process can start serving (health: 503 catching up) before the WAL
// directory is even reachable. Run returns nil on cancellation and an
// error only for fatal faults (Classify: FaultFatal) — a WAL directory
// written under different Options or workload, where retrying forever
// would mask an operator mistake.
func (s *Supervisor) Run(ctx context.Context) error {
	backoff := s.cfg.BackoffMin
	defer func() {
		s.mu.Lock()
		f := s.f
		s.mu.Unlock()
		if f != nil {
			_ = f.Close()
		}
	}()
	for {
		if ctx.Err() != nil {
			return nil
		}

		s.mu.Lock()
		f := s.f
		s.mu.Unlock()
		if f == nil {
			if err := s.rebootstrap(); err != nil {
				if Classify(err) == FaultFatal {
					return fmt.Errorf("router: supervisor bootstrap: %w", err)
				}
				if !s.sleep(ctx, s.jitter(backoff)) {
					return nil
				}
				backoff = s.nextBackoff(backoff)
				continue
			}
			backoff = s.cfg.BackoffMin
			continue // poll the fresh follower immediately
		}

		n, err := s.poll(f)
		if err == nil {
			if n == 0 {
				// Fully drained: the follower is at the primary's tip.
				s.setState(StateHealthy)
				s.mirror.SetReady(true)
			}
			backoff = s.cfg.BackoffMin
			if !s.sleep(ctx, s.jitter(s.cfg.Poll)) {
				return nil
			}
			continue
		}

		switch c := Classify(err); c {
		case FaultFatal:
			return fmt.Errorf("router: supervisor poll: %w", err)
		case FaultGap, FaultCorrupt:
			s.recordFault(c, err)
			_ = f.Close()
			s.mu.Lock()
			s.f, s.p = nil, nil
			s.mu.Unlock()
			s.setState(StateRebootstrapping)
			backoff = s.cfg.BackoffMin
			// Loop re-bootstraps immediately: the newer checkpoint that
			// caused a gap is already there to read.
		default:
			s.recordFault(FaultTransient, err)
			if s.State() != StateRebootstrapping {
				s.setState(StateDegraded)
			}
			if !s.sleep(ctx, s.jitter(backoff)) {
				return nil
			}
			backoff = s.nextBackoff(backoff)
		}
	}
}

// poll runs one Follower.Poll, updates counters, and keeps the mirror's
// pinned generation fresh after applying records.
func (s *Supervisor) poll(f *loom.Follower) (int, error) {
	n, err := f.Poll()
	s.mu.Lock()
	s.polls++
	s.records += uint64(n)
	p := s.p
	s.mu.Unlock()
	if err == nil && n > 0 && p != nil {
		// Snapshots are O(1); repinning per productive poll keeps the
		// fallback generation at most one poll behind the mirror.
		s.mirror.Pin(p.Snapshot())
	}
	return n, err
}

// rebootstrap builds a fresh follower from the newest checkpoint and
// splices it onto the mirror. On failure the fault is recorded (and any
// named segment quarantined) and the caller backs off.
func (s *Supervisor) rebootstrap() error {
	s.setState(StateRebootstrapping)
	f, info, err := s.boot()
	if err != nil {
		s.recordFault(Classify(err), err)
		return err
	}
	p := f.Partitioner()
	s.mirror.Splice(p)
	s.mu.Lock()
	s.f, s.p = f, p
	s.boots++
	boots := s.boots
	s.mu.Unlock()
	s.setState(StateCatchingUp)
	s.logf("supervisor: bootstrap #%d from checkpoint LSN %d (%d records replayed, through LSN %d)",
		boots, info.CheckpointLSN, info.ReplayedRecords, info.LastLSN)
	return nil
}

// recordFault updates fault counters, remembers the error for /stats,
// and quarantines any segment the error names.
func (s *Supervisor) recordFault(c FaultClass, err error) {
	s.mu.Lock()
	s.lastErr = err.Error()
	switch c {
	case FaultGap:
		s.gaps++
	case FaultCorrupt:
		s.corruptions++
	default:
		s.transients++
	}
	var quarantined string
	if c == FaultCorrupt {
		if name, ok := loom.DamagedSegment(err); ok {
			if _, seen := s.quarantined[name]; !seen {
				s.quarantined[name] = struct{}{}
				quarantined = name
			}
		}
	}
	s.mu.Unlock()
	s.logf("supervisor: %s fault: %v", c, err)
	if quarantined != "" {
		s.logf("supervisor: quarantined segment %s (preserve for forensics; re-bootstrapping around it)", quarantined)
	}
}

// jitter spreads d uniformly over [d/2, d) so a fleet of replicas
// polling one primary does not synchronise its retries.
func (s *Supervisor) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	s.mu.Lock()
	j := time.Duration(s.rng.Int63n(int64(d / 2)))
	s.mu.Unlock()
	return d/2 + j
}

// nextBackoff grows the delay by BackoffFactor, capped at BackoffMax.
func (s *Supervisor) nextBackoff(d time.Duration) time.Duration {
	n := time.Duration(float64(d) * s.cfg.BackoffFactor)
	if n > s.cfg.BackoffMax {
		n = s.cfg.BackoffMax
	}
	if n < s.cfg.BackoffMin {
		n = s.cfg.BackoffMin
	}
	return n
}

// sleep waits d or until cancellation; reports false on cancellation.
func (s *Supervisor) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
