package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp
}

func TestServerEndpoints(t *testing.T) {
	m, pl, edges, k := motifMirror(t)
	ts := httptest.NewServer(NewServer(m, pl))
	defer ts.Close()

	// A placed vertex routes; the decision round-trips as JSON.
	seed := edges[0].U
	want := m.Lookup(seed)
	var d Decision
	if resp := getJSON(t, fmt.Sprintf("%s/route/%d", ts.URL, seed), &d); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /route/%d: status %d", seed, resp.StatusCode)
	}
	if d != want {
		t.Fatalf("GET /route/%d = %+v, want %+v", seed, d, want)
	}

	// Non-integer vertex ids are a 400.
	if resp := getJSON(t, ts.URL+"/route/xyz", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /route/xyz: status %d, want 400", resp.StatusCode)
	}

	// Batch: POST an array, get decisions in order.
	vs := []int64{seed, 1 << 40, edges[1].V}
	body, _ := json.Marshal(vs)
	resp, err := http.Post(ts.URL+"/route/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /route/batch: %v", err)
	}
	var ds []Decision
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatalf("decode batch: %v", err)
	}
	resp.Body.Close()
	if len(ds) != len(vs) || ds[0] != want || ds[1].Found {
		t.Fatalf("POST /route/batch = %+v", ds)
	}

	// Malformed batch body is a 400.
	resp, err = http.Post(ts.URL+"/route/batch", "application/json", bytes.NewReader([]byte(`{"not":"an array"}`)))
	if err != nil {
		t.Fatalf("POST bad batch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch body: status %d, want 400", resp.StatusCode)
	}

	// Scatter plan for a placed seed.
	var plan Plan
	if resp := getJSON(t, fmt.Sprintf("%s/route/scatter?seed=%d&motif=coauthors", ts.URL, seed), &plan); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /route/scatter: status %d", resp.StatusCode)
	}
	if plan.Motif != "coauthors" || plan.Fanout < 1 || plan.Fanout > k {
		t.Fatalf("scatter plan = %+v", plan)
	}
	if resp := getJSON(t, ts.URL+"/route/scatter?seed=1&motif=nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown motif: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/route/scatter?seed=abc&motif=coauthors", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad seed: status %d, want 400", resp.StatusCode)
	}

	// Stats carries the mirror counters and the registered motifs.
	var st statsReply
	if resp := getJSON(t, ts.URL+"/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: status %d", resp.StatusCode)
	}
	if st.Mirror.Vertices == 0 || !st.Mirror.Ready || len(st.Motifs) != 4 {
		t.Fatalf("GET /stats = %+v", st)
	}

	// Healthz: ready.
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: status %d, want 200", resp.StatusCode)
	}
}

func TestServerHealthzGatesOnCatchUp(t *testing.T) {
	m := New() // detached: catch-up has not completed
	ts := httptest.NewServer(NewServer(m, nil))
	defer ts.Close()

	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("not-ready /healthz: status %d, want 503", resp.StatusCode)
	}
	// Lookups still answer while catching up — only health reports it.
	var d Decision
	if resp := getJSON(t, ts.URL+"/route/42", &d); resp.StatusCode != http.StatusOK || d.Found {
		t.Fatalf("mid-catch-up /route = %+v (status %d)", d, resp.StatusCode)
	}
	// Scatter without a workload is 501.
	if resp := getJSON(t, ts.URL+"/route/scatter?seed=1&motif=x", nil); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("plannerless scatter: status %d, want 501", resp.StatusCode)
	}

	m.SetReady(true)
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("ready /healthz: status %d, want 200", resp.StatusCode)
	}
}

// TestServerLoadShedding: with one in-flight slot and slow routes, a
// burst must get some immediate 503s carrying Retry-After — shed, not
// queued — while /stats and /healthz stay un-gated and the shed counter
// shows up in /stats.
func TestServerLoadShedding(t *testing.T) {
	m := New()
	m.SetReady(true)
	s := NewServerWith(m, nil, ServerConfig{
		MaxInFlight: 1,
		Delay:       100 * time.Millisecond,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const burst = 8
	codes := make(chan int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/route/1")
			if err != nil {
				t.Errorf("GET /route/1: %v", err)
				codes <- 0
				return
			}
			if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
				t.Error("shed response missing Retry-After")
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	var ok, shed int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("burst of %d: %d ok, %d shed — want both nonzero", burst, ok, shed)
	}
	// Health and stats answer even with the gate saturated.
	var st statsReply
	if resp := getJSON(t, ts.URL+"/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats under load: status %d", resp.StatusCode)
	}
	if st.Server.Shed == 0 || st.Server.MaxInFlight != 1 {
		t.Fatalf("server stats = %+v, want shed > 0, max_inflight 1", st.Server)
	}
	if got := s.Shed(); got != st.Server.Shed {
		t.Fatalf("Shed() = %d, stats say %d", got, st.Server.Shed)
	}
}

// TestServerBatchLimit: the configurable batch cap answers 413.
func TestServerBatchLimit(t *testing.T) {
	m := New()
	s := NewServerWith(m, nil, ServerConfig{MaxBatch: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body, _ := json.Marshal([]int64{1, 2, 3, 4, 5})
	resp, err := http.Post(ts.URL+"/route/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /route/batch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize batch: status %d, want 413", resp.StatusCode)
	}
}

// TestServerRequestTimeout: a handler slower than the deadline answers
// 503 instead of holding the connection.
func TestServerRequestTimeout(t *testing.T) {
	m := New()
	s := NewServerWith(m, nil, ServerConfig{
		Timeout: 30 * time.Millisecond,
		Delay:   5 * time.Second,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/route/1")
	if err != nil {
		t.Fatalf("GET /route/1: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("slow route: status %d, want 503", resp.StatusCode)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("timeout reply took %v — deadline not enforced", took)
	}
}

// TestServerHealthzDegraded: with a supervisor attached, /healthz
// separates never-caught-up (503) from degraded-but-serving (200 with a
// warning body) from healthy (200 "ok").
func TestServerHealthzDegraded(t *testing.T) {
	m := New()
	sup := NewSupervisor(m, nil, SupervisorConfig{})
	s := NewServerWith(m, nil, ServerConfig{Supervisor: sup})
	ts := httptest.NewServer(s)
	defer ts.Close()

	readBody := func() (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// Never healthy: not ready, regardless of mirror readiness.
	m.SetReady(true)
	if code, body := readBody(); code != http.StatusServiceUnavailable || !strings.Contains(body, "not ready") {
		t.Fatalf("pre-health /healthz = %d %q, want 503 not ready", code, body)
	}

	sup.setState(StateHealthy)
	if code, body := readBody(); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy /healthz = %d %q, want 200 ok", code, body)
	}

	// Degraded after having been healthy: keep serving, say so.
	sup.setState(StateDegraded)
	if code, body := readBody(); code != http.StatusOK || !strings.Contains(body, "degraded") {
		t.Fatalf("degraded /healthz = %d %q, want 200 degraded", code, body)
	}
	sup.setState(StateRebootstrapping)
	if code, body := readBody(); code != http.StatusOK || !strings.Contains(body, "degraded") {
		t.Fatalf("rebootstrapping /healthz = %d %q, want 200 degraded", code, body)
	}
	// Supervisor state also lands in /stats.
	var st statsReply
	getJSON(t, ts.URL+"/stats", &st)
	if st.Supervisor == nil || st.Supervisor.State != "rebootstrapping" {
		t.Fatalf("stats supervisor = %+v", st.Supervisor)
	}
}
