package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp
}

func TestServerEndpoints(t *testing.T) {
	m, pl, edges, k := motifMirror(t)
	ts := httptest.NewServer(NewServer(m, pl))
	defer ts.Close()

	// A placed vertex routes; the decision round-trips as JSON.
	seed := edges[0].U
	want := m.Lookup(seed)
	var d Decision
	if resp := getJSON(t, fmt.Sprintf("%s/route/%d", ts.URL, seed), &d); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /route/%d: status %d", seed, resp.StatusCode)
	}
	if d != want {
		t.Fatalf("GET /route/%d = %+v, want %+v", seed, d, want)
	}

	// Non-integer vertex ids are a 400.
	if resp := getJSON(t, ts.URL+"/route/xyz", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /route/xyz: status %d, want 400", resp.StatusCode)
	}

	// Batch: POST an array, get decisions in order.
	vs := []int64{seed, 1 << 40, edges[1].V}
	body, _ := json.Marshal(vs)
	resp, err := http.Post(ts.URL+"/route/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /route/batch: %v", err)
	}
	var ds []Decision
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatalf("decode batch: %v", err)
	}
	resp.Body.Close()
	if len(ds) != len(vs) || ds[0] != want || ds[1].Found {
		t.Fatalf("POST /route/batch = %+v", ds)
	}

	// Malformed batch body is a 400.
	resp, err = http.Post(ts.URL+"/route/batch", "application/json", bytes.NewReader([]byte(`{"not":"an array"}`)))
	if err != nil {
		t.Fatalf("POST bad batch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch body: status %d, want 400", resp.StatusCode)
	}

	// Scatter plan for a placed seed.
	var plan Plan
	if resp := getJSON(t, fmt.Sprintf("%s/route/scatter?seed=%d&motif=coauthors", ts.URL, seed), &plan); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /route/scatter: status %d", resp.StatusCode)
	}
	if plan.Motif != "coauthors" || plan.Fanout < 1 || plan.Fanout > k {
		t.Fatalf("scatter plan = %+v", plan)
	}
	if resp := getJSON(t, ts.URL+"/route/scatter?seed=1&motif=nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown motif: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/route/scatter?seed=abc&motif=coauthors", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad seed: status %d, want 400", resp.StatusCode)
	}

	// Stats carries the mirror counters and the registered motifs.
	var st statsReply
	if resp := getJSON(t, ts.URL+"/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: status %d", resp.StatusCode)
	}
	if st.Mirror.Vertices == 0 || !st.Mirror.Ready || len(st.Motifs) != 4 {
		t.Fatalf("GET /stats = %+v", st)
	}

	// Healthz: ready.
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: status %d, want 200", resp.StatusCode)
	}
}

func TestServerHealthzGatesOnCatchUp(t *testing.T) {
	m := New() // detached: catch-up has not completed
	ts := httptest.NewServer(NewServer(m, nil))
	defer ts.Close()

	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("not-ready /healthz: status %d, want 503", resp.StatusCode)
	}
	// Lookups still answer while catching up — only health reports it.
	var d Decision
	if resp := getJSON(t, ts.URL+"/route/42", &d); resp.StatusCode != http.StatusOK || d.Found {
		t.Fatalf("mid-catch-up /route = %+v (status %d)", d, resp.StatusCode)
	}
	// Scatter without a workload is 501.
	if resp := getJSON(t, ts.URL+"/route/scatter?seed=1&motif=x", nil); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("plannerless scatter: status %d, want 501", resp.StatusCode)
	}

	m.SetReady(true)
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("ready /healthz: status %d, want 200", resp.StatusCode)
	}
}
