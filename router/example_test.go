package router_test

import (
	"fmt"
	"log"

	"loom"
	"loom/router"
)

// Example mirrors a live partitioner into a routing tier and plans a
// scatter-gather motif query: the serving-side counterpart of Loom's
// query-aware placement.
func Example() {
	wl, err := loom.DatasetWorkload("dblp")
	if err != nil {
		log.Fatal(err)
	}
	p, err := loom.New(loom.Options{Partitions: 4, ExpectedVertices: 4000, WindowSize: 256}, wl)
	if err != nil {
		log.Fatal(err)
	}

	// Attach before ingest: the mirror sees every placement event. (A
	// late joiner attaches mid-stream the same way — Attach splices a
	// snapshot onto the live feed automatically.)
	m := router.New()
	m.Attach(p)

	edges, err := loom.GenerateDataset("dblp", 3000, 5)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.AddBatch(edges); err != nil {
		log.Fatal(err)
	}
	p.Flush()

	// Point lookup: answered from the mirror, never touching the
	// partitioner's locks.
	d := m.Lookup(edges[0].U)
	fmt.Printf("found=%v source=%s\n", d.Found, d.Source)

	// Scatter plan: contact only the partitions reachable within the
	// motif's diameter of the seed — fewer than a broadcast to all 4.
	pl := router.NewPlanner(m, wl.Queries(), p.Partitions())
	plan, err := pl.Scatter(edges[0].U, "coauthors")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast=%v fanout within k: %v\n", plan.Broadcast, plan.Fanout <= p.Partitions())

	// Unknown seeds fall back to broadcast.
	plan, _ = pl.Scatter(1<<40, "coauthors")
	fmt.Printf("unknown seed broadcasts: %v\n", plan.Broadcast)

	// Output:
	// found=true source=mirror
	// broadcast=false fanout within k: true
	// unknown seed broadcasts: true
}
