package router

import (
	"fmt"
	"sort"

	"loom"
)

// Planner turns motif queries into scatter-gather plans. A pattern query
// seeded at one vertex can only bind vertices within the motif's diameter
// of the seed, and Loom's placement actively co-locates motif-matched
// neighbourhoods — so instead of broadcasting to all k partitions, the
// planner walks the mirror's motif-relevant adjacency sample out to that
// diameter and returns just the partitions the reachable vertices live
// on. This is the locality heuristic of "On Smart Query Routing": contact
// the partition holding the seed's neighbourhood first, fan out only as
// far as the data demands, and fall back to broadcast when nothing is
// known about the seed.
type Planner struct {
	m       *Mirror
	queries map[string]loom.QueryInfo
	order   []string // registration order, for Motifs
	k       int
}

// NewPlanner builds a planner over the mirror for a registered workload
// (pass Workload.Queries()). k is the partition count a broadcast
// contacts.
func NewPlanner(m *Mirror, queries []loom.QueryInfo, k int) *Planner {
	pl := &Planner{m: m, queries: make(map[string]loom.QueryInfo, len(queries)), k: k}
	for _, q := range queries {
		if _, dup := pl.queries[q.Name]; !dup {
			pl.order = append(pl.order, q.Name)
		}
		pl.queries[q.Name] = q
	}
	return pl
}

// Motifs lists the registered queries in registration order.
func (pl *Planner) Motifs() []loom.QueryInfo {
	out := make([]loom.QueryInfo, 0, len(pl.order))
	for _, name := range pl.order {
		out = append(out, pl.queries[name])
	}
	return out
}

// Plan is a scatter-gather routing decision for one seeded motif query:
// the partitions to contact, in contact order (the seed's own partition
// first — per Khan et al. it answers co-located matches without any
// remote hop at all).
type Plan struct {
	Seed     int64  `json:"seed"`
	Motif    string `json:"motif"`
	Diameter int    `json:"diameter"` // hops explored from the seed

	Partitions []int `json:"partitions"`
	Fanout     int   `json:"fanout"`    // len(Partitions)
	Broadcast  bool  `json:"broadcast"` // true: nothing known, contact everyone
	Visited    int   `json:"visited"`   // vertices reached in the adjacency sample
}

// Scatter plans the partition set for motif seeded at seed. The walk uses
// the mirror's evict-edge adjacency sample — exactly the edges that
// matched a workload motif inside Loom's window — bounded by the motif's
// diameter. An unknown seed (never placed, or still windowed) yields a
// broadcast plan over all k partitions. Unknown motif names are an error.
func (pl *Planner) Scatter(seed int64, motif string) (Plan, error) {
	q, ok := pl.queries[motif]
	if !ok {
		return Plan{}, fmt.Errorf("router: motif %q is not in the registered workload", motif)
	}
	plan := Plan{Seed: seed, Motif: motif, Diameter: q.Diameter}

	seedDec := pl.m.Lookup(seed)
	if !seedDec.Found {
		plan.Broadcast = true
		plan.Partitions = make([]int, pl.k)
		for i := range plan.Partitions {
			plan.Partitions[i] = i
		}
		plan.Fanout = pl.k
		return plan, nil
	}

	// BFS over the sampled motif adjacency, at most Diameter hops out.
	parts := map[int]bool{seedDec.Partition: true}
	dist := map[int64]int{seed: 0}
	frontier := []int64{seed}
	for hop := 0; hop < q.Diameter && len(frontier) > 0; hop++ {
		var next []int64
		for _, v := range frontier {
			for _, w := range pl.m.Neighbors(v) {
				if _, seen := dist[w]; seen {
					continue
				}
				dist[w] = hop + 1
				next = append(next, w)
				if d := pl.m.Lookup(w); d.Found {
					parts[d.Partition] = true
				}
			}
		}
		frontier = next
	}
	plan.Visited = len(dist)

	// Seed's partition first, the rest ascending: the contact order.
	rest := make([]int, 0, len(parts)-1)
	for p := range parts {
		if p != seedDec.Partition {
			rest = append(rest, p)
		}
	}
	sort.Ints(rest)
	plan.Partitions = append([]int{seedDec.Partition}, rest...)
	plan.Fanout = len(plan.Partitions)
	return plan, nil
}
