// Benchmarks reproducing the Loom paper's tables and figures. One
// testing.B target per experiment (see DESIGN.md §3 for the index), plus
// per-partitioner micro-benchmarks whose ns/op is directly comparable to
// Table 2 (time to partition a 10k-edge stream).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// or regenerate a single artefact, e.g.:
//
//	go test -bench=BenchmarkFig7 -benchtime=1x -v
//
// The figure benchmarks print their paper-style tables when run with -v via
// b.Log; cmd/loom-bench renders the same tables to stdout with more knobs.
package loom_test

import (
	"bytes"
	"fmt"
	"testing"

	"loom"

	"loom/internal/bench"
	"loom/internal/core"
	"loom/internal/dataset"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/refine"
	"loom/internal/signature"
	"loom/internal/simulate"
	"loom/internal/tpstry"
	"loom/internal/window"
	"loom/internal/workload"
)

// benchCfg is the shared harness configuration for the figure/table
// benchmarks: small enough that the full suite runs in minutes, large
// enough that every relative comparison holds.
func benchCfg() bench.Config {
	return bench.Config{
		Scale:      6000,
		Seed:       42,
		K:          8,
		WindowSize: 1024,
		MaxMatches: 100_000,
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			bench.RenderTable1(&buf, rows)
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := bench.RunFig4()
		if i == 0 {
			var buf bytes.Buffer
			bench.RenderFig4(&buf, pts)
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.RunFig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			bench.RenderIPTCells(&buf, "Fig. 7: ipt vs Hash, 8-way, three stream orders", cells)
			b.Logf("\n%smedian Loom reduction vs Fennel: %.1f%%", buf.String(), bench.SummarizeLoomVsFennel(cells))
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.RunFig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			bench.RenderIPTCells(&buf, "Fig. 8: ipt vs Hash, k ∈ {2,8,32}, bfs streams", cells)
			b.Logf("\n%smedian Loom reduction vs Fennel: %.1f%%", buf.String(), bench.SummarizeLoomVsFennel(cells))
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"provgen", "musicbrainz"}
	for i := 0; i < b.N; i++ {
		pts, err := bench.RunFig9(cfg, []int{64, 256, 1024, 4096})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			bench.RenderFig9(&buf, pts)
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			bench.RenderTable2(&buf, rows)
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"musicbrainz"}
	for i := 0; i < b.N; i++ {
		cells, err := bench.RunAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			bench.RenderAblation(&buf, cells)
			b.Log("\n" + buf.String())
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: time to partition a 10k-edge stream (Table 2's unit).
// ---------------------------------------------------------------------------

// tenKStream generates a 10k-edge BFS stream of the MusicBrainz-like graph
// (the paper's most heterogeneous dataset) once per benchmark binary.
func tenKStream(b *testing.B) (graph.Stream, *graph.Graph) {
	b.Helper()
	g, err := dataset.Generate("musicbrainz", 4500, 42)
	if err != nil {
		b.Fatal(err)
	}
	s := graph.StreamOf(g, graph.OrderBFS, nil)
	if len(s) < 10_000 {
		b.Fatalf("stream too short: %d", len(s))
	}
	return s[:10_000], g
}

func streamVertexCount(s graph.Stream) int {
	seen := make(map[graph.VertexID]struct{})
	for _, e := range s {
		seen[e.U] = struct{}{}
		seen[e.V] = struct{}{}
	}
	return len(seen)
}

func BenchmarkHashPartition10k(b *testing.B) {
	s, _ := tenKStream(b)
	n := streamVertexCount(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := partition.NewHash(8, partition.CapacityFor(n, 8, partition.DefaultImbalance))
		for _, e := range s {
			p.ProcessEdge(e)
		}
		p.Flush()
	}
}

func BenchmarkLDGPartition10k(b *testing.B) {
	s, _ := tenKStream(b)
	n := streamVertexCount(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := partition.NewLDG(8, partition.CapacityFor(n, 8, partition.DefaultImbalance))
		for _, e := range s {
			p.ProcessEdge(e)
		}
		p.Flush()
	}
}

func BenchmarkFennelPartition10k(b *testing.B) {
	s, _ := tenKStream(b)
	n := streamVertexCount(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := partition.NewFennel(8, n, len(s))
		for _, e := range s {
			p.ProcessEdge(e)
		}
		p.Flush()
	}
}

func BenchmarkLoomPartition10k(b *testing.B) {
	s, _ := tenKStream(b)
	n := streamVertexCount(s)
	wl, err := workload.ForDataset("musicbrainz")
	if err != nil {
		b.Fatal(err)
	}
	scheme := signature.NewScheme(signature.DefaultP, 42)
	scheme.RegisterLabels(dataset.DatasetLabels("musicbrainz"))
	trie, err := wl.BuildTrie(scheme)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.New(core.Config{
			K:        8,
			Capacity: partition.CapacityFor(n, 8, partition.DefaultImbalance),
			// Paper configuration: window 10k, T = 40%.
			WindowSize:       10_000,
			SupportThreshold: 0.40,
		}, trie)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range s {
			p.ProcessEdge(e)
		}
		p.Flush()
	}
}

// BenchmarkDurableLoomPartition10k is BenchmarkLoomPartition10k at the
// public API with a write-ahead log under the default group-commit policy
// — the pair quantifies what durability costs on the paper configuration.
// Each iteration pays the full lifecycle (Open's directory fsync, Close's
// final group write + fsync) on top of the ingest itself; the
// `loom-bench -exp recover` sweep isolates the in-stream overhead across
// all fsync policies with interleaved-minimum methodology.
func BenchmarkDurableLoomPartition10k(b *testing.B) {
	s, _ := tenKStream(b)
	stream := make([]loom.StreamEdge, len(s))
	seen := make(map[int64]struct{})
	for i, e := range s {
		stream[i] = loom.StreamEdge{U: int64(e.U), LU: string(e.LU), V: int64(e.V), LV: string(e.LV)}
		seen[int64(e.U)] = struct{}{}
		seen[int64(e.V)] = struct{}{}
	}
	wl, err := loom.DatasetWorkload("musicbrainz")
	if err != nil {
		b.Fatal(err)
	}
	opt := loom.Options{
		Partitions:       8,
		ExpectedVertices: len(seen),
		// Paper configuration: window 10k, T = 40%.
		WindowSize:            10_000,
		SupportThreshold:      0.40,
		Seed:                  42,
		DisableGraphRecording: true,
		WALSync:               loom.WALSyncBatch,
	}
	tmp := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := opt
		o.WALDir = fmt.Sprintf("%s/run-%d", tmp, i)
		p, _, err := loom.Open(o, wl)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < len(stream); j += 256 {
			end := min(j+256, len(stream))
			if err := p.AddBatch(stream[j:end]); err != nil {
				b.Fatal(err)
			}
		}
		p.Flush()
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Component micro-benchmarks.
// ---------------------------------------------------------------------------

func BenchmarkSignatureOfQueryGraph(b *testing.B) {
	wl, err := workload.ForDataset("lubm")
	if err != nil {
		b.Fatal(err)
	}
	scheme := signature.NewScheme(signature.DefaultP, 1)
	q := wl.Queries[0].Pattern
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = scheme.SignatureOf(q)
	}
}

func BenchmarkEdgeDelta(b *testing.B) {
	scheme := signature.NewScheme(signature.DefaultP, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = scheme.EdgeDelta("Person", i%4, "Paper", (i+1)%4)
	}
}

func BenchmarkTrieConstruction(b *testing.B) {
	wl, err := workload.ForDataset("musicbrainz")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scheme := signature.NewScheme(signature.DefaultP, 42)
		trie := tpstry.New(scheme)
		for _, q := range wl.Queries {
			if err := trie.AddQuery(q.Pattern, q.Freq); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkWindowInsert(b *testing.B) {
	s, _ := tenKStream(b)
	wl, err := workload.ForDataset("musicbrainz")
	if err != nil {
		b.Fatal(err)
	}
	scheme := signature.NewScheme(signature.DefaultP, 42)
	scheme.RegisterLabels(dataset.DatasetLabels("musicbrainz"))
	trie, err := wl.BuildTrie(scheme)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := window.NewMatcher(trie, 0.40, len(s)+1)
		for _, e := range s {
			if _, ok := w.SingleEdgeMotif(e); ok {
				if err := w.Insert(e); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkSimulation(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"provgen"}
	for i := 0; i < b.N; i++ {
		cells, err := bench.RunSimulation(cfg, simulate.CostModel{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			bench.RenderSimulation(&buf, cells)
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkExtensions(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"provgen"}
	for i := 0; i < b.N; i++ {
		cells, err := bench.RunExtensions(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			bench.RenderExtensions(&buf, cells)
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkRefine(b *testing.B) {
	g, err := dataset.Generate("provgen", 4000, 42)
	if err != nil {
		b.Fatal(err)
	}
	wl, err := workload.ForDataset("provgen")
	if err != nil {
		b.Fatal(err)
	}
	scheme := signature.NewScheme(signature.DefaultP, 42)
	scheme.RegisterLabels(dataset.DatasetLabels("provgen"))
	trie, err := wl.BuildTrie(scheme)
	if err != nil {
		b.Fatal(err)
	}
	k := 8
	capC := partition.CapacityFor(g.NumVertices(), k, partition.DefaultImbalance)
	h := partition.NewHash(k, capC)
	for _, se := range graph.StreamOf(g, graph.OrderBFS, nil) {
		h.ProcessEdge(se)
	}
	a := h.Assignment()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := refine.Refine(g, a, trie, refine.Config{Capacity: capC}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultisetOps(b *testing.B) {
	base := signature.NewMultiset(3, 17, 42, 42, 99, 120, 200)
	d := signature.Delta{7, 55, 180}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grown := base.PlusDelta(d)
		if _, ok := grown.Minus(base); !ok {
			b.Fatal("minus failed")
		}
	}
}

func BenchmarkTrieChildLookup(b *testing.B) {
	wl, err := workload.ForDataset("musicbrainz")
	if err != nil {
		b.Fatal(err)
	}
	scheme := signature.NewScheme(signature.DefaultP, 42)
	scheme.RegisterLabels(dataset.DatasetLabels("musicbrainz"))
	trie, err := wl.BuildTrie(scheme)
	if err != nil {
		b.Fatal(err)
	}
	d := scheme.EdgeDelta(dataset.LArtist, 0, dataset.LAlbum, 0)
	root := trie.Root()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := root.ChildByDelta(d); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// ---------------------------------------------------------------------------
// Streaming hot-path benchmarks: cost of ingesting ONE stream edge
// (ns/op and allocs/op are per edge). These are the numbers the interning
// refactor targets; run with
//
//	go test -bench=AddEdge -benchmem
// ---------------------------------------------------------------------------

// runAddEdge drives b.N single-edge ingests through fresh partitioners,
// recycling the stream (the partitioner is rebuilt outside the timer when
// the stream wraps, so steady-state per-edge cost dominates).
func runAddEdge(b *testing.B, s graph.Stream, newPartitioner func() partition.Streamer) {
	b.Helper()
	b.ReportAllocs()
	p := newPartitioner()
	j := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if j == len(s) {
			b.StopTimer()
			p = newPartitioner()
			j = 0
			b.StartTimer()
		}
		p.ProcessEdge(s[j])
		j++
	}
}

// ---------------------------------------------------------------------------
// Eviction-path benchmarks: cost of evicting ONE window edge with its
// motif cluster (equal opportunism end to end), and of draining a full
// window. The eviction overhaul targets 0 steady-state allocs/op on the
// EvictOne path; run with
//
//	go test -bench 'EvictOne|Flush' -benchmem
// ---------------------------------------------------------------------------

// loomFor10k builds a Loom configured like the paper's Table 2 run over
// the shared 10k-edge stream.
func loomFor10k(b *testing.B, n int) func() *core.Loom {
	b.Helper()
	wl, err := workload.ForDataset("musicbrainz")
	if err != nil {
		b.Fatal(err)
	}
	scheme := signature.NewScheme(signature.DefaultP, 42)
	scheme.RegisterLabels(dataset.DatasetLabels("musicbrainz"))
	trie, err := wl.BuildTrie(scheme)
	if err != nil {
		b.Fatal(err)
	}
	return func() *core.Loom {
		p, err := core.New(core.Config{
			K:                8,
			Capacity:         partition.CapacityFor(n, 8, partition.DefaultImbalance),
			WindowSize:       10_000,
			SupportThreshold: 0.40,
		}, trie)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
}

// BenchmarkEvictOne measures one eviction round: oldest edge → Me →
// support sort → single-pass bidding → cluster assignment → window
// removal. The window is refilled outside the timer whenever it drains.
func BenchmarkEvictOne(b *testing.B) {
	s, _ := tenKStream(b)
	newLoom := loomFor10k(b, streamVertexCount(s))
	fill := func() *core.Loom {
		p := newLoom()
		for _, e := range s {
			p.ProcessEdge(e)
		}
		return p
	}
	b.ReportAllocs()
	p := fill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Window().Empty() {
			b.StopTimer()
			p = fill()
			b.StartTimer()
		}
		if !p.EvictOne() {
			b.Fatal("eviction failed on a non-empty window")
		}
	}
}

// BenchmarkFlush measures draining a full 10k-edge window end to end.
func BenchmarkFlush(b *testing.B) {
	s, _ := tenKStream(b)
	newLoom := loomFor10k(b, streamVertexCount(s))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := newLoom()
		for _, e := range s {
			p.ProcessEdge(e)
		}
		b.StartTimer()
		p.Flush()
	}
}

func BenchmarkAddEdgeLoom(b *testing.B) {
	s, _ := tenKStream(b)
	n := streamVertexCount(s)
	wl, err := workload.ForDataset("musicbrainz")
	if err != nil {
		b.Fatal(err)
	}
	scheme := signature.NewScheme(signature.DefaultP, 42)
	scheme.RegisterLabels(dataset.DatasetLabels("musicbrainz"))
	trie, err := wl.BuildTrie(scheme)
	if err != nil {
		b.Fatal(err)
	}
	runAddEdge(b, s, func() partition.Streamer {
		p, err := core.New(core.Config{
			K:                8,
			Capacity:         partition.CapacityFor(n, 8, partition.DefaultImbalance),
			WindowSize:       1024,
			SupportThreshold: 0.40,
		}, trie)
		if err != nil {
			b.Fatal(err)
		}
		return p
	})
}

func BenchmarkAddEdgeBaselines(b *testing.B) {
	s, _ := tenKStream(b)
	n := streamVertexCount(s)
	capC := partition.CapacityFor(n, 8, partition.DefaultImbalance)
	b.Run("hash", func(b *testing.B) {
		runAddEdge(b, s, func() partition.Streamer { return partition.NewHash(8, capC) })
	})
	b.Run("ldg", func(b *testing.B) {
		runAddEdge(b, s, func() partition.Streamer { return partition.NewLDG(8, capC) })
	})
	b.Run("fennel", func(b *testing.B) {
		runAddEdge(b, s, func() partition.Streamer { return partition.NewFennel(8, n, len(s)) })
	})
}

// ---------------------------------------------------------------------------
// Public-API ingest benchmarks: the concurrent loom.Partitioner pays an
// ingest lock per call, so per-edge AddEdge and 256-edge AddBatch bracket
// the cost of the public surface (ns/op and allocs/op are per edge; graph
// recording disabled so the numbers isolate the streaming path). Run with
//
//	go test -bench=AddBatch -benchmem
// ---------------------------------------------------------------------------

// publicTenKStream converts the shared 10k-edge stream to the public edge
// type, returning it with its distinct-vertex count.
func publicTenKStream(b *testing.B) ([]loom.StreamEdge, int) {
	s, _ := tenKStream(b)
	out := make([]loom.StreamEdge, len(s))
	for i, e := range s {
		out[i] = loom.StreamEdge{U: int64(e.U), LU: string(e.LU), V: int64(e.V), LV: string(e.LV)}
	}
	return out, streamVertexCount(s)
}

// newPublicLoom mirrors BenchmarkAddEdgeLoom's configuration through the
// public constructor.
func newPublicLoom(b *testing.B, n int) func() *loom.Partitioner {
	b.Helper()
	wl, err := loom.DatasetWorkload("musicbrainz")
	if err != nil {
		b.Fatal(err)
	}
	return func() *loom.Partitioner {
		p, err := loom.New(loom.Options{
			Partitions:            8,
			ExpectedVertices:      n,
			WindowSize:            1024,
			Seed:                  42,
			DisableGraphRecording: true,
		}, wl)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
}

func BenchmarkAddBatch(b *testing.B) {
	s, n := publicTenKStream(b)
	newP := newPublicLoom(b, n)
	b.Run("edge", func(b *testing.B) {
		b.ReportAllocs()
		p := newP()
		j := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if j == len(s) {
				b.StopTimer()
				p = newP()
				j = 0
				b.StartTimer()
			}
			e := s[j]
			p.AddEdge(e.U, e.LU, e.V, e.LV)
			j++
		}
	})
	b.Run("batch256", func(b *testing.B) {
		const batchSize = 256
		b.ReportAllocs()
		p := newP()
		j := 0
		b.ResetTimer()
		for i := 0; i < b.N; {
			if j == len(s) {
				b.StopTimer()
				p = newP()
				j = 0
				b.StartTimer()
			}
			end := j + batchSize
			if end > len(s) {
				end = len(s)
			}
			if left := b.N - i; end > j+left {
				end = j + left
			}
			if err := p.AddBatch(s[j:end]); err != nil {
				b.Fatal(err)
			}
			i += end - j
			j = end
		}
	})
}

// BenchmarkAddBatchParallel measures the stage-parallel AddBatch pipeline
// across worker counts (workers1 is the exact single-threaded path and the
// regression guard for it; the others exercise the gang prepare pre-pass).
// Batches of 2048 edges match the scale experiment. On a single-core
// machine all sub-benchmarks share one CPU, so the multi-worker numbers
// measure pipeline overhead rather than speedup.
func BenchmarkAddBatchParallel(b *testing.B) {
	s, _ := tenKStream(b)
	pub := make([]loom.StreamEdge, len(s))
	for i, e := range s {
		pub[i] = loom.StreamEdge{U: int64(e.U), LU: string(e.LU), V: int64(e.V), LV: string(e.LV)}
	}
	n := streamVertexCount(s)
	wl, err := loom.DatasetWorkload("musicbrainz")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			const batchSize = 2048
			newP := func() *loom.Partitioner {
				p, err := loom.New(loom.Options{
					Partitions:            8,
					ExpectedVertices:      n,
					WindowSize:            1024,
					Seed:                  42,
					Workers:               workers,
					DisableGraphRecording: true,
				}, wl)
				if err != nil {
					b.Fatal(err)
				}
				return p
			}
			b.ReportAllocs()
			p := newP()
			j := 0
			b.ResetTimer()
			for i := 0; i < b.N; {
				if j == len(pub) {
					b.StopTimer()
					p = newP()
					j = 0
					b.StartTimer()
				}
				end := j + batchSize
				if end > len(pub) {
					end = len(pub)
				}
				if left := b.N - i; end > j+left {
					end = j + left
				}
				if err := p.AddBatch(pub[j:end]); err != nil {
					b.Fatal(err)
				}
				i += end - j
				j = end
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Read-path benchmarks: snapshot capture and point reads at serving scale
// (one million assigned vertices, the router-tier regime of ISSUE 6). The
// clone benchmark pins the historical O(V) deep-copy cost that the epoch
// read path replaces. Run with
//
//	go test -bench='Snapshot|PartitionOf' -benchmem
// ---------------------------------------------------------------------------

// benchReadVertices is 2^20 ≈ one million assigned vertices.
const benchReadVertices = 1 << 20

// benchReadPartitioner builds a hash-baseline partitioner with n assigned
// vertices (hash places every endpoint immediately, so construction is the
// cheap way to a serving-scale assignment).
func benchReadPartitioner(b *testing.B, n int) *loom.Partitioner {
	b.Helper()
	p, err := loom.NewBaseline("hash", loom.Options{
		Partitions: 8, ExpectedVertices: n, DisableGraphRecording: true,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 8192
	batch := make([]loom.StreamEdge, 0, chunk)
	for i := 0; i < n; i += 2 {
		batch = append(batch, loom.StreamEdge{U: int64(i), LU: "n", V: int64(i + 1), LV: "n"})
		if len(batch) == chunk {
			if err := p.AddBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := p.AddBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	p.Flush()
	if got := p.Snapshot().NumAssigned(); got != n {
		b.Fatalf("built %d assigned vertices, want %d", got, n)
	}
	return p
}

// BenchmarkSnapshot measures Partitioner.Snapshot at one million assigned
// vertices — the capture cost a router replica pays per refresh.
func BenchmarkSnapshot(b *testing.B) {
	p := benchReadPartitioner(b, benchReadVertices)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := p.Snapshot(); s.NumAssigned() != benchReadVertices {
			b.Fatal("inconsistent snapshot")
		}
	}
}

// BenchmarkSnapshotClone pins the O(V) deep-copy baseline
// (Tracker.Snapshot: parts, sizes and the whole vertex table) that
// Partitioner.Snapshot historically paid per call.
func BenchmarkSnapshotClone(b *testing.B) {
	const n = benchReadVertices
	tr := partition.NewTracker(8, partition.CapacityFor(n, 8, partition.DefaultImbalance))
	for i := 0; i < n; i++ {
		tr.Assign(graph.VertexID(i), partition.ID(i%8))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := tr.Snapshot(); s.NumAssigned() != n {
			b.Fatal("inconsistent clone")
		}
	}
}

var sinkPart int

// BenchmarkPartitionOf measures uncontended point reads against the live
// partitioner (cache-hot vertex: the per-call floor of the read path).
func BenchmarkPartitionOf(b *testing.B) {
	p := benchReadPartitioner(b, benchReadVertices)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, ok := p.PartitionOf(12345)
		if !ok {
			b.Fatal("vertex missing")
		}
		sinkPart += pt
	}
}

// BenchmarkPartitionOfParallel measures point-read scalability: GOMAXPROCS
// reader goroutines issuing PartitionOf against one partitioner.
func BenchmarkPartitionOfParallel(b *testing.B) {
	p := benchReadPartitioner(b, benchReadVertices)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		v, local := int64(0), 0
		for pb.Next() {
			pt, _ := p.PartitionOf(v & (benchReadVertices - 1))
			local += pt
			v++
		}
		sinkPart += local
	})
}

func BenchmarkWorkloadExecution(b *testing.B) {
	s, g := tenKStream(b)
	wl, err := workload.ForDataset("musicbrainz")
	if err != nil {
		b.Fatal(err)
	}
	n := streamVertexCount(s)
	p := partition.NewHash(8, partition.CapacityFor(n, 8, partition.DefaultImbalance))
	for _, e := range s {
		p.ProcessEdge(e)
	}
	a := p.Assignment()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Execute(g, a, wl, workload.Options{MaxMatchesPerQuery: 50_000}); err != nil {
			b.Fatal(err)
		}
	}
}
