// Restream example: the two §6 "future work" integrations implemented by
// this library — restreaming (a second pass that keeps the localities the
// first pass discovered) and offline TAPER-style refinement — applied to
// the paper's hardest setting, a randomly ordered stream.
//
// Run with:
//
//	go run ./examples/restream
package main

import (
	"fmt"
	"log"

	"loom"
)

func main() {
	edges, err := loom.GenerateDataset("lubm", 8000, 13)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := loom.DatasetWorkload("lubm")
	if err != nil {
		log.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, e := range edges {
		seen[e.U], seen[e.V] = true, true
	}
	opt := loom.Options{Partitions: 8, ExpectedVertices: len(seen), WindowSize: 1024}

	// Pass 1 over a pseudo-adversarial random order (§5.3).
	stream1, err := loom.OrderStream(edges, "random", 1)
	if err != nil {
		log.Fatal(err)
	}
	p1, err := loom.New(opt, wl)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range stream1 {
		p1.AddStreamEdge(e)
	}
	p1.Flush()
	ev1, err := p1.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pass 1 (random order):        ipt=%.0f  imbalance=%.1f%%\n", ev1.IPT, 100*ev1.Imbalance)

	// Pass 2: restream a *different* random order with pass 1 as prior.
	p2, err := p1.Restream()
	if err != nil {
		log.Fatal(err)
	}
	stream2, err := loom.OrderStream(edges, "random", 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range stream2 {
		p2.AddStreamEdge(e)
	}
	p2.Flush()
	ev2, err := p2.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pass 2 (restream, new order): ipt=%.0f  imbalance=%.1f%%\n", ev2.IPT, 100*ev2.Imbalance)

	// Offline refinement of the restreamed partitioning.
	st, err := p2.Refine(4)
	if err != nil {
		log.Fatal(err)
	}
	ev3, err := p2.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after refinement:             ipt=%.0f  imbalance=%.1f%%  (%d moves, weighted cut %.0f → %.0f)\n",
		ev3.IPT, 100*ev3.Imbalance, st.Moves, st.CutBefore, st.CutAfter)
}
