// Provenance example: partitioning a PROV-DM lineage graph (the paper's
// ProvGen dataset) for a workload of provenance queries, and the effect of
// Loom's window size (§5.3 / Fig. 9).
//
// Provenance graphs are chains: page versions (Entities) produced by edit
// Activities that are associated with Agents. Lineage queries walk these
// chains — derivation steps, attribution, agent continuity — so keeping
// consecutive revisions together is exactly what a query-aware partitioner
// should discover.
//
// Run with:
//
//	go run ./examples/provenance
package main

import (
	"fmt"
	"log"

	"loom"
)

func main() {
	// Generate the ProvGen-like dataset and its canonical PROV workload
	// (Fig. 6's Entity–Activity–Entity pattern and friends).
	edges, err := loom.GenerateDataset("provgen", 6000, 11)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := loom.DatasetWorkload("provgen")
	if err != nil {
		log.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, e := range edges {
		seen[e.U], seen[e.V] = true, true
	}
	fmt.Printf("provgen: %d vertices, %d edges, %d queries in workload\n",
		len(seen), len(edges), wl.Len())

	stream, err := loom.OrderStream(edges, "random", 3) // adversarial order
	if err != nil {
		log.Fatal(err)
	}

	// Baseline for the comparison: Hash (what most distributed graph
	// databases do by default).
	hash, err := loom.NewBaseline("hash", loom.Options{
		Partitions: 8, ExpectedVertices: len(seen),
	}, wl)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range stream {
		hash.AddStreamEdge(e)
	}
	hash.Flush()
	hev, err := hash.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhash baseline: ipt = %.1f\n", hev.IPT)

	// Loom across window sizes: larger windows see more of each motif
	// cluster before having to commit (§5.3), so ipt falls then
	// flattens.
	fmt.Println("\nwindow size   ipt        vs hash")
	for _, window := range []int{32, 128, 512, 2048} {
		p, err := loom.New(loom.Options{
			Partitions:       8,
			ExpectedVertices: len(seen),
			WindowSize:       window,
		}, wl)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range stream {
			p.AddStreamEdge(e)
		}
		p.Flush()
		ev, err := p.Evaluate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13d %-10.1f %.1f%%\n", window, ev.IPT, 100*ev.IPT/hev.IPT)
	}
}
