// Quickstart: partition a small social graph for a pattern-matching query
// workload, then inspect placements and quality.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"loom"
)

func main() {
	// 1. Describe the query workload Q: patterns plus their relative
	// frequencies. Here 60% of queries look for friends-of-friends and
	// 40% for people in the same city.
	wl := loom.NewWorkload("social")
	wl.Add("friends-of-friends", loom.Path("person", "person", "person"), 0.6)
	wl.Add("same-city", loom.Path("person", "city", "person"), 0.4)

	// 2. Build the partitioner: 2 partitions, and a hint of how many
	// vertices to expect (sizes the balance constraint C = ν·n/k).
	p, err := loom.New(loom.Options{
		Partitions:       2,
		ExpectedVertices: 16,
		WindowSize:       12, // tiny demo window; default is 10k
	}, wl)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Stream edges as they arrive. Two triangle communities, each
	// around its own city.
	type e struct {
		u  int64
		lu string
		v  int64
		lv string
	}
	for _, ed := range []e{
		{1, "person", 2, "person"}, {2, "person", 3, "person"}, {1, "person", 3, "person"},
		{1, "person", 10, "city"}, {2, "person", 10, "city"}, {3, "person", 10, "city"},
		{4, "person", 5, "person"}, {5, "person", 6, "person"}, {4, "person", 6, "person"},
		{4, "person", 11, "city"}, {5, "person", 11, "city"}, {6, "person", 11, "city"},
	} {
		p.AddEdge(ed.u, ed.lu, ed.v, ed.lv)
	}

	// 4. Drain the sliding window at end-of-stream.
	p.Flush()

	// 5. Read placements.
	fmt.Println("vertex -> partition:")
	for v := int64(1); v <= 11; v++ {
		if part, ok := p.PartitionOf(v); ok {
			fmt.Printf("  %2d -> %d\n", v, part)
		}
	}
	fmt.Printf("partition sizes: %v\n", p.Sizes())

	// 6. Evaluate quality: inter-partition traversals for the workload.
	ev, err := p.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload ipt: %.1f, edge-cut: %d, imbalance: %.1f%%\n",
		ev.IPT, ev.EdgeCut, 100*ev.Imbalance)

	st := p.Stats()
	fmt.Printf("stats: %d edges processed, %d windowed, %d placed immediately\n",
		st.EdgesProcessed, st.WindowedEdges, st.ImmediateEdges)
}
