// Streaming example: Loom's *online* behaviours — batch ingest, the
// sliding window as a temporary partition (Ptemp, §3), mid-stream
// placement reads via snapshots, and workload evolution (§2's "trivially
// updated" TPSTry++).
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"loom"
)

func main() {
	// Start with a citation-style workload over papers and people.
	wl := loom.NewWorkload("bibliometrics")
	wl.Add("coauthors", loom.Path("Person", "Paper", "Person"), 0.7)
	wl.Add("citations", loom.Path("Paper", "Paper"), 0.3)

	p, err := loom.New(loom.Options{
		Partitions:       4,
		ExpectedVertices: 4000,
		WindowSize:       64,
	}, wl)
	if err != nil {
		log.Fatal(err)
	}

	// Generate a DBLP-like stream and feed it online, in batches — the
	// shape real producers have (a queue consumer hands over a poll's
	// worth of edges at a time). AddBatch returns errors for corrupt
	// edges instead of panicking; here the stream is clean, so any error
	// is fatal.
	edges, err := loom.GenerateDataset("dblp", 3000, 5)
	if err != nil {
		log.Fatal(err)
	}

	const batchSize = 256
	quarters := map[int]bool{}
	for _, q := range []int{1, 2, 3} {
		quarters[(q*len(edges)/4)/batchSize] = true
	}
	for b := 0; b*batchSize < len(edges); b++ {
		start := b * batchSize
		end := min(start+batchSize, len(edges))
		if err := p.AddBatch(edges[start:end]); err != nil {
			log.Fatal(err)
		}

		if quarters[b] {
			st := p.Stats()
			// Vertices in the window are accessible in the temporary
			// partition Ptemp before permanent placement — here we just
			// observe how many edges are buffered.
			fmt.Printf("after %6d edges: window(Ptemp)=%d edges, evictions=%d, immediate=%d\n",
				end, st.WindowLen, st.Evictions, st.ImmediateEdges)
		}

		// Halfway through, the application's query mix changes: venue
		// queries appear. Loom absorbs the new pattern online; newly
		// arriving venue edges start matching motifs immediately.
		if b == (len(edges)/2)/batchSize {
			if err := p.AddQuery("venue-community", loom.Path("Person", "Paper", "Venue"), 0.4); err != nil {
				log.Fatal(err)
			}
			fmt.Println("        >>> workload updated mid-stream: venue queries added")
		}
	}

	// A snapshot is a consistent view that can be read at any time without
	// blocking ingest; vertices still in Ptemp are reported as unassigned.
	snap := p.Snapshot()
	if part, ok := snap.PartitionOf(edges[0].U); ok {
		fmt.Printf("vertex %d is in partition %d before the final flush (%d assigned so far)\n",
			edges[0].U, part, snap.NumAssigned())
	}

	p.Flush()
	fmt.Printf("final sizes: %v\n", p.Sizes())
	ev, err := p.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final quality: ipt=%.1f edge-cut=%d imbalance=%.1f%%\n",
		ev.IPT, ev.EdgeCut, 100*ev.Imbalance)
}
