// Streaming example: Loom's *online* behaviours — the sliding window as a
// temporary partition (Ptemp, §3), mid-stream placement queries, and
// workload evolution (§2's "trivially updated" TPSTry++).
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"loom"
)

func main() {
	// Start with a citation-style workload over papers and people.
	wl := loom.NewWorkload("bibliometrics")
	wl.Add("coauthors", loom.Path("Person", "Paper", "Person"), 0.7)
	wl.Add("citations", loom.Path("Paper", "Paper"), 0.3)

	p, err := loom.New(loom.Options{
		Partitions:       4,
		ExpectedVertices: 4000,
		WindowSize:       64,
	}, wl)
	if err != nil {
		log.Fatal(err)
	}

	// Generate a DBLP-like stream and feed it online.
	edges, err := loom.GenerateDataset("dblp", 3000, 5)
	if err != nil {
		log.Fatal(err)
	}

	checkpoints := map[int]bool{
		len(edges) / 4: true, len(edges) / 2: true, 3 * len(edges) / 4: true,
	}
	for i, e := range edges {
		p.AddStreamEdge(e)

		if checkpoints[i] {
			st := p.Stats()
			// Vertices in the window are accessible in the temporary
			// partition Ptemp before permanent placement — here we just
			// observe how many edges are buffered.
			fmt.Printf("after %6d edges: window(Ptemp)=%d edges, evictions=%d, immediate=%d\n",
				i+1, st.WindowLen, st.Evictions, st.ImmediateEdges)
		}

		// Halfway through, the application's query mix changes: venue
		// queries appear. Loom absorbs the new pattern online; newly
		// arriving venue edges start matching motifs immediately.
		if i == len(edges)/2 {
			if err := p.AddQuery("venue-community", loom.Path("Person", "Paper", "Venue"), 0.4); err != nil {
				log.Fatal(err)
			}
			fmt.Println("        >>> workload updated mid-stream: venue queries added")
		}
	}

	// A placement can be read at any time; vertices still in Ptemp are
	// reported as unassigned.
	if part, ok := p.PartitionOf(edges[0].U); ok {
		fmt.Printf("vertex %d is in partition %d before the final flush\n", edges[0].U, part)
	}

	p.Flush()
	fmt.Printf("final sizes: %v\n", p.Sizes())
	ev, err := p.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final quality: ipt=%.1f edge-cut=%d imbalance=%.1f%%\n",
		ev.IPT, ev.EdgeCut, 100*ev.Imbalance)
}
