// Router example: the placement-serving tier in two acts, as a thin demo
// of the router package (per "On Smart Query Routing": a streaming
// partitioner is only useful to a distributed graph store if the routing
// tier can follow its decisions as they happen).
//
// Act one is live mirroring: four producer goroutines feed one Loom
// partitioner with AddBatch while a router.Mirror — attached before
// ingest — follows every vertex → partition decision through the
// placement event feed. A reconciler re-pins the mirror's routing
// generation (an immutable Snapshot, an atomic epoch grab costing the
// producers nothing) on every lap of its loop, queries are routed without
// ever touching the partitioner's locks, and a scatter-gather plan for a
// workload motif contacts fewer partitions than a broadcast.
//
// Act two is state shipping ("On Smart Query Routing" assumes
// late-joining router replicas bootstrap from shipped state, not by
// replaying the whole stream): the primary runs durably, checkpoints
// mid-stream, syncs, and its WAL directory is copied to a replica, which
// recovers checkpoint + log tail, splices its own Mirror onto the live
// feed with Attach — and, while the primary is still ingesting, routes
// with zero mismatches against it. Once both finish the stream, the
// replica's mirror lands on the identical assignment.
//
// Run with:
//
//	go run ./examples/router
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"loom"
	"loom/router"
)

// shipDir copies a synced WAL directory to a new location — the "state
// shipping" step. In a real deployment this is an object-store upload or
// an rsync; the files are self-validating (CRC-framed), so a torn copy is
// detected at the replica, not silently replayed.
func shipDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	wl, err := loom.DatasetWorkload("dblp")
	if err != nil {
		log.Fatal(err)
	}
	walRoot, err := os.MkdirTemp("", "loom-router-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walRoot)

	// The primary is durable: every accepted batch is framed into the WAL
	// before it is applied, so its state can be shipped to replicas.
	opt := loom.Options{
		Partitions:       4,
		ExpectedVertices: 4000,
		WindowSize:       256,
		WALDir:           filepath.Join(walRoot, "primary"),
	}
	p, _, err := loom.Open(opt, wl)
	if err != nil {
		log.Fatal(err)
	}

	// ---- Act one: live mirroring ------------------------------------

	// Attach before ingesting: no event is missed, the mirror is a
	// complete replica of every placement decision as it happens.
	mirror := router.New()
	mirror.Attach(p)

	edges, err := loom.GenerateDataset("dblp", 3000, 7)
	if err != nil {
		log.Fatal(err)
	}
	// half: checkpoint here. ship: sync + copy the WAL dir here; the
	// replica bootstraps from checkpoint@half plus the logged tail
	// (half..ship) instead of replaying the whole stream.
	half, ship := len(edges)/2, 5*len(edges)/6

	// Four producers stream disjoint shards of the first half in batches —
	// e.g. four ingestion frontends of a graph store.
	const producers, batchSize = 4, 128
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		shard := edges[w*half/producers : (w+1)*half/producers]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(shard); i += batchSize {
				end := min(i+batchSize, len(shard))
				if err := p.AddBatch(shard[i:end]); err != nil {
					log.Printf("batch dropped corrupt edges: %v", err)
				}
			}
		}()
	}

	// The reconciler re-pins the routing generation as fast as it can
	// spin. Each Snapshot call is an atomic epoch grab — it costs the
	// producers nothing, which is why a routing tier can afford a tight
	// loop here.
	ingestDone := make(chan struct{})
	var pins int
	var reconciler sync.WaitGroup
	reconciler.Add(1)
	go func() {
		defer reconciler.Done()
		for {
			select {
			case <-ingestDone:
				return
			default:
				mirror.Pin(p.Snapshot())
				pins++
			}
		}
	}()

	// Meanwhile the router serves lookups from the live mirror.
	probe := edges[0].U
	fmt.Printf("mid-stream: %s (mirror holds %d placements)\n",
		mirror.Lookup(probe), mirror.Len())

	wg.Wait()

	// Scatter-gather: a motif query seeded at probe only needs the
	// partitions within the motif's diameter of it — Loom's co-location
	// keeps that well under a broadcast to all 4.
	planner := router.NewPlanner(mirror, wl.Queries(), p.Partitions())
	plan, err := planner.Scatter(probe, "coauthors")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scatter(coauthors @ %d): contact partitions %v (fanout %d of %d)\n",
		probe, plan.Partitions, plan.Fanout, p.Partitions())

	// ---- Act two: state shipping + a late-joining replica ------------

	// Mid-stream checkpoint: a full-state snapshot in the WAL directory.
	// Everything before it can be pruned; a replica starts here instead
	// of replaying 1500 edges' worth of log.
	ckptBytes, err := p.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint at edge %d: %d bytes\n", half, ckptBytes)

	// The next sixth of the stream lands in the log tail after the
	// checkpoint — the part the replica will recover record by record.
	for i := half; i < ship; i += batchSize {
		end := min(i+batchSize, ship)
		if err := p.AddBatch(edges[i:end]); err != nil {
			log.Printf("batch dropped corrupt edges: %v", err)
		}
	}
	// Sync makes every acknowledged record durable (group commit may
	// still be staging some), then the directory is shipped
	// byte-for-byte.
	if err := p.Sync(); err != nil {
		log.Fatal(err)
	}
	if err := shipDir(filepath.Join(walRoot, "primary"), filepath.Join(walRoot, "replica")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shipped WAL dir at edge %d (checkpoint + tail)\n", ship)

	// The primary keeps ingesting the last sixth while the late-joining
	// replica bootstraps from the shipped directory.
	liveDone := make(chan struct{})
	go func() {
		defer close(liveDone)
		for i := ship; i < len(edges); i += batchSize {
			end := min(i+batchSize, len(edges))
			if err := p.AddBatch(edges[i:end]); err != nil {
				log.Printf("batch dropped corrupt edges: %v", err)
			}
		}
	}()

	ropt := opt
	ropt.WALDir = filepath.Join(walRoot, "replica")
	replica, info, err := loom.Open(ropt, wl)
	if err != nil {
		log.Fatal(err)
	}
	defer replica.Close()
	fmt.Printf("replica recovered: checkpoint@%d + %d replayed records (lsn %d)\n",
		info.CheckpointLSN, info.ReplayedRecords, info.LastLSN)

	// Attach splices the replica's mirror onto its live feed: the pinned
	// generation covers everything recovered from the shipped state, the
	// event stream covers everything from here on.
	rmirror := router.New()
	rmirror.Attach(replica)

	// Zero routing mismatches against the live primary, checked while the
	// primary is still ingesting: placements are immutable once made, and
	// both lookup paths are lock-free, so every vertex the replica
	// recovered must route exactly where the primary put it.
	catchupMismatch := 0
	rsnap := replica.Snapshot()
	rsnap.Each(func(v int64, part int) {
		if d := rmirror.Lookup(v); !d.Found || d.Partition != part {
			catchupMismatch++
		}
		if got, ok := p.PartitionOf(v); !ok || got != part {
			catchupMismatch++
		}
	})
	fmt.Printf("replica vs live primary (mid-ingest): %d recovered placements, %d routing mismatches\n",
		rsnap.NumAssigned(), catchupMismatch)
	if catchupMismatch != 0 {
		log.Fatalf("replica diverged from primary after catch-up")
	}

	<-liveDone
	p.Flush() // end-of-stream: drain Ptemp; the mirror sees the tail placements
	close(ingestDone)
	reconciler.Wait()
	mirror.Pin(p.Snapshot()) // final generation
	if err := p.Err(); err != nil {
		log.Fatal(err)
	}

	st := mirror.Stats()
	fmt.Printf("stream done: mirror holds %d placements, saw %d window evictions, pinned %d routing generations\n",
		st.Vertices, st.Evicted, pins)
	for _, v := range []int64{edges[0].U, edges[len(edges)/2].V, edges[len(edges)-1].V} {
		fmt.Printf("route: %s\n", mirror.Lookup(v))
	}

	// The mirror must agree exactly with the partitioner's own view.
	snap := p.Snapshot()
	if mirror.Len() != snap.NumAssigned() {
		log.Fatalf("mirror has %d placements, partitioner %d", mirror.Len(), snap.NumAssigned())
	}
	mismatches := 0
	snap.Each(func(v int64, part int) {
		if d := mirror.Lookup(v); !d.Found || d.Partition != part {
			mismatches++
		}
	})
	fmt.Printf("mirror verified against snapshot: %d vertices, %d mismatches\n",
		snap.NumAssigned(), mismatches)

	// Finally the replica tails the same last sixth of the stream (in a
	// real deployment: the shipped segments the primary wrote after the
	// copy) and must land on the identical assignment — recovery plus
	// replay is bit-identical to never having crashed or joined late.
	for i := ship; i < len(edges); i += batchSize {
		end := min(i+batchSize, len(edges))
		if err := replica.AddBatch(edges[i:end]); err != nil {
			log.Printf("batch dropped corrupt edges: %v", err)
		}
	}
	replica.Flush()
	if err := replica.Err(); err != nil {
		log.Fatal(err)
	}
	// The replica's mirror resolves recovered placements through its
	// pinned generation and tail placements through the live feed — the
	// splice. Routed answers, not table sizes, are the contract.
	if got := replica.Snapshot().NumAssigned(); got != snap.NumAssigned() {
		log.Fatalf("replica finished with %d placements, primary %d", got, snap.NumAssigned())
	}
	tailMismatch := 0
	snap.Each(func(v int64, part int) {
		if d := rmirror.Lookup(v); !d.Found || d.Partition != part {
			tailMismatch++
		}
	})
	fmt.Printf("replica caught up: %d placements, %d mismatches vs primary\n",
		snap.NumAssigned(), tailMismatch)
	if tailMismatch != 0 {
		log.Fatal("replica final state diverged from primary")
	}
	if err := p.Close(); err != nil {
		log.Fatal(err)
	}
}
