// Router example: a toy query router kept in sync with the partitioner via
// placement events — the downstream consumer the concurrent API exists for
// (per "On Smart Query Routing": a streaming partitioner is only useful to
// a distributed graph store if the routing tier can follow its decisions
// as they happen).
//
// Four producer goroutines feed one Loom partitioner with AddBatch while
// the router mirrors every vertex → partition decision through OnPlace,
// and tracks window (Ptemp) residency through evict events. A third
// mechanism shows the copy-on-write read path: a reconciler pins a fresh
// routing generation — an immutable Snapshot — on every lap of its loop.
// Snapshots are an atomic epoch grab (nanoseconds, one small allocation,
// no lock shared with ingest), so re-pinning never stalls the producers:
// zero-stall mirroring. Queries are routed against the event mirror with
// the pinned generation as fallback — the partitioner's locks are never
// touched at query time — and the final mirror is verified against the
// partitioner's own assignment.
//
// The second act is state shipping ("On Smart Query Routing" assumes
// late-joining router replicas bootstrap from shipped state, not by
// replaying the whole stream): the primary runs durably (-wal style),
// checkpoints mid-stream, syncs, and its WAL directory is copied to a
// replica, which recovers checkpoint + log tail and — while the primary
// is still ingesting — routes with zero mismatches against it. Once the
// primary finishes, the replica tails the rest of the stream and lands
// on the identical assignment.
//
// Run with:
//
//	go run ./examples/router
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"loom"
)

// Router is the toy routing tier: a partition mirror fed exclusively by
// placement events, plus a pinned routing generation (an immutable
// snapshot) swapped at the router's own pace. It has its own lock because
// event handlers run on the ingesting goroutines (under the partitioner's
// ingest lock) while queries arrive on others; it must never call back
// into the partitioner from the handler.
type Router struct {
	mu       sync.RWMutex
	machines []string
	table    map[int64]int // vertex → machine index, mirrored live
	evicted  int           // edges seen leaving Ptemp

	// gen is the pinned routing generation: a consistent, immutable view
	// the query path can fall back to for vertices whose place event it
	// has not applied yet. Swapping it is one pointer store; reading it
	// never blocks and never observes a half-applied batch.
	gen atomic.Pointer[loom.Snapshot]
}

func NewRouter(k int) *Router {
	r := &Router{table: make(map[int64]int)}
	for i := 0; i < k; i++ {
		r.machines = append(r.machines, fmt.Sprintf("graph-store-%d", i))
	}
	return r
}

// Apply is the OnPlace handler: O(1), no partitioner calls.
func (r *Router) Apply(ev loom.PlacementEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch ev.Kind {
	case loom.EventPlace:
		r.table[ev.V] = ev.Partition
	case loom.EventEvict:
		r.evicted++
	}
}

// Pin swaps in a new routing generation.
func (r *Router) Pin(snap *loom.Snapshot) { r.gen.Store(snap) }

// Route returns the machine serving v: the live event mirror first, then
// the pinned generation (lock-free, batch-consistent). Vertices neither
// knows live in the window partition Ptemp; a real router would broadcast
// or consult the ingest tier for those.
func (r *Router) Route(v int64) (string, bool) {
	r.mu.RLock()
	m, ok := r.table[v]
	r.mu.RUnlock()
	if ok {
		return r.machines[m], true
	}
	if snap := r.gen.Load(); snap != nil {
		if m, ok := snap.PartitionOf(v); ok {
			return r.machines[m], true
		}
	}
	return "Ptemp (still windowed)", false
}

func (r *Router) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.table)
}

// shipDir copies a synced WAL directory to a new location — the "state
// shipping" step. In a real deployment this is an object-store upload or
// an rsync; the files are self-validating (CRC-framed), so a torn copy is
// detected at the replica, not silently replayed.
func shipDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	wl, err := loom.DatasetWorkload("dblp")
	if err != nil {
		log.Fatal(err)
	}
	walRoot, err := os.MkdirTemp("", "loom-router-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walRoot)

	// The primary is durable: every accepted batch is framed into the WAL
	// before it is applied, so its state can be shipped to replicas.
	opt := loom.Options{
		Partitions:       4,
		ExpectedVertices: 4000,
		WindowSize:       256,
		WALDir:           filepath.Join(walRoot, "primary"),
	}
	p, _, err := loom.Open(opt, wl)
	if err != nil {
		log.Fatal(err)
	}

	router := NewRouter(4)
	p.OnPlace(router.Apply) // subscribe BEFORE ingesting: no event is missed

	edges, err := loom.GenerateDataset("dblp", 3000, 7)
	if err != nil {
		log.Fatal(err)
	}
	// half: checkpoint here. ship: sync + copy the WAL dir here; the
	// replica bootstraps from checkpoint@half plus the logged tail
	// (half..ship) instead of replaying the whole stream.
	half, ship := len(edges)/2, 5*len(edges)/6

	// Four producers stream disjoint shards of the first half in batches —
	// e.g. four ingestion frontends of a graph store.
	const producers, batchSize = 4, 128
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		shard := edges[w*half/producers : (w+1)*half/producers]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(shard); i += batchSize {
				end := min(i+batchSize, len(shard))
				if err := p.AddBatch(shard[i:end]); err != nil {
					log.Printf("batch dropped corrupt edges: %v", err)
				}
			}
		}()
	}

	// The reconciler re-pins the routing generation as fast as it can spin.
	// Each Snapshot call is an atomic epoch grab — it costs the producers
	// nothing, which is why a routing tier can afford a tight loop here.
	ingestDone := make(chan struct{})
	var pins int
	var reconciler sync.WaitGroup
	reconciler.Add(1)
	go func() {
		defer reconciler.Done()
		for {
			select {
			case <-ingestDone:
				return
			default:
				router.Pin(p.Snapshot())
				pins++
			}
		}
	}()

	// Meanwhile the router serves lookups from the live mirror.
	probe := edges[0].U
	fmt.Printf("mid-stream: vertex %d → %s (mirror holds %d placements)\n",
		probe, firstOf(router.Route(probe)), router.Len())

	wg.Wait()

	// Mid-stream checkpoint: a full-state snapshot in the WAL directory.
	// Everything before it can be pruned; a replica starts here instead of
	// replaying 1500 edges' worth of log.
	ckptBytes, err := p.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint at edge %d: %d bytes\n", half, ckptBytes)

	// The next sixth of the stream lands in the log tail after the
	// checkpoint — the part the replica will replay record by record.
	for i := half; i < ship; i += batchSize {
		end := min(i+batchSize, ship)
		if err := p.AddBatch(edges[i:end]); err != nil {
			log.Printf("batch dropped corrupt edges: %v", err)
		}
	}
	// Sync makes every acknowledged record durable (group commit may still
	// be staging some), then the directory is shipped byte-for-byte.
	if err := p.Sync(); err != nil {
		log.Fatal(err)
	}
	if err := shipDir(filepath.Join(walRoot, "primary"), filepath.Join(walRoot, "replica")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shipped WAL dir at edge %d (checkpoint + tail)\n", ship)

	// The primary keeps ingesting the last sixth while the late-joining
	// replica bootstraps from the shipped directory.
	liveDone := make(chan struct{})
	go func() {
		defer close(liveDone)
		for i := ship; i < len(edges); i += batchSize {
			end := min(i+batchSize, len(edges))
			if err := p.AddBatch(edges[i:end]); err != nil {
				log.Printf("batch dropped corrupt edges: %v", err)
			}
		}
	}()

	ropt := opt
	ropt.WALDir = filepath.Join(walRoot, "replica")
	replica, info, err := loom.Open(ropt, wl)
	if err != nil {
		log.Fatal(err)
	}
	defer replica.Close()
	fmt.Printf("replica recovered: checkpoint@%d + %d replayed records (lsn %d)\n",
		info.CheckpointLSN, info.ReplayedRecords, info.LastLSN)

	// Zero routing mismatches against the live primary, checked while the
	// primary is still ingesting: placements are immutable once made, and
	// PartitionOf is the lock-free read path, so every vertex the replica
	// recovered must route exactly where the primary put it.
	catchupMismatch := 0
	rsnap := replica.Snapshot()
	rsnap.Each(func(v int64, part int) {
		if got, ok := p.PartitionOf(v); !ok || got != part {
			catchupMismatch++
		}
	})
	fmt.Printf("replica vs live primary (mid-ingest): %d recovered placements, %d routing mismatches\n",
		rsnap.NumAssigned(), catchupMismatch)
	if catchupMismatch != 0 {
		log.Fatalf("replica diverged from primary after catch-up")
	}

	<-liveDone
	p.Flush() // end-of-stream: drain Ptemp; the router sees the tail placements
	close(ingestDone)
	reconciler.Wait()
	router.Pin(p.Snapshot()) // final generation
	if err := p.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stream done: mirror holds %d placements, saw %d window evictions, pinned %d routing generations\n",
		router.Len(), router.evicted, pins)
	for _, v := range []int64{edges[0].U, edges[len(edges)/2].V, edges[len(edges)-1].V} {
		machine, _ := router.Route(v)
		fmt.Printf("route(vertex %d) = %s\n", v, machine)
	}

	// The mirror must agree exactly with the partitioner's own view.
	snap := p.Snapshot()
	if router.Len() != snap.NumAssigned() {
		log.Fatalf("mirror has %d placements, partitioner %d", router.Len(), snap.NumAssigned())
	}
	mismatches := 0
	snap.Each(func(v int64, part int) {
		if router.table[v] != part {
			mismatches++
		}
	})
	fmt.Printf("mirror verified against snapshot: %d vertices, %d mismatches\n",
		snap.NumAssigned(), mismatches)

	// Finally the replica tails the same last sixth of the stream (in a
	// real deployment: the shipped segments the primary wrote after the
	// copy) and must land on the identical assignment — recovery plus
	// replay is bit-identical to never having crashed or joined late.
	for i := ship; i < len(edges); i += batchSize {
		end := min(i+batchSize, len(edges))
		if err := replica.AddBatch(edges[i:end]); err != nil {
			log.Printf("batch dropped corrupt edges: %v", err)
		}
	}
	replica.Flush()
	if err := replica.Err(); err != nil {
		log.Fatal(err)
	}
	final := replica.Snapshot()
	tailMismatch := 0
	if final.NumAssigned() != snap.NumAssigned() {
		log.Fatalf("replica finished with %d placements, primary %d", final.NumAssigned(), snap.NumAssigned())
	}
	final.Each(func(v int64, part int) {
		if got, ok := snap.PartitionOf(v); !ok || got != part {
			tailMismatch++
		}
	})
	fmt.Printf("replica caught up: %d placements, %d mismatches vs primary\n",
		final.NumAssigned(), tailMismatch)
	if tailMismatch != 0 {
		log.Fatal("replica final state diverged from primary")
	}
	if err := p.Close(); err != nil {
		log.Fatal(err)
	}
}

func firstOf(s string, _ bool) string { return s }
