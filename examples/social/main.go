// Social-network example: the workload-sensitivity story from §1 of the
// Loom paper, at demonstration scale.
//
// A social graph's query workload traverses a *specific subset* of edge
// types (friendships between people, people attending the same event), so
// a workload-agnostic min-edge-cut partitioner leaves performance on the
// table. This example builds a community-structured social graph, streams
// it through Loom and through the three baselines, and compares the
// inter-partition traversals each partitioning suffers for the workload.
//
// Run with:
//
//	go run ./examples/social
package main

import (
	"fmt"
	"log"
	"math/rand"

	"loom"
)

// buildSocialStream creates a community-structured social graph: groups of
// people with dense internal friendships, each clustered around a city and
// a few events, with occasional cross-community friendships.
func buildSocialStream(rng *rand.Rand, communities, peoplePer int) []loom.StreamEdge {
	var edges []loom.StreamEdge
	person := func(c, i int) int64 { return int64(c*1000 + i) }
	city := func(c int) int64 { return int64(900000 + c) }
	event := func(c, j int) int64 { return int64(800000 + c*10 + j) }

	for c := 0; c < communities; c++ {
		for i := 0; i < peoplePer; i++ {
			p := person(c, i)
			// Friendships inside the community.
			for j := i + 1; j < peoplePer; j++ {
				if rng.Float64() < 0.25 {
					edges = append(edges, loom.StreamEdge{U: p, LU: "person", V: person(c, j), LV: "person"})
				}
			}
			// Home city.
			edges = append(edges, loom.StreamEdge{U: p, LU: "person", V: city(c), LV: "city"})
			// Events attended.
			for j := 0; j < 3; j++ {
				if rng.Float64() < 0.3 {
					edges = append(edges, loom.StreamEdge{U: p, LU: "person", V: event(c, j), LV: "event"})
				}
			}
		}
		// A few bridges to the next community.
		for b := 0; b < 3; b++ {
			edges = append(edges, loom.StreamEdge{
				U: person(c, rng.Intn(peoplePer)), LU: "person",
				V: person((c+1)%communities, rng.Intn(peoplePer)), LV: "person",
			})
		}
	}
	return edges
}

func main() {
	rng := rand.New(rand.NewSource(7))
	edges := buildSocialStream(rng, 24, 30)

	// Count vertices for the capacity hint.
	seen := map[int64]bool{}
	for _, e := range edges {
		seen[e.U], seen[e.V] = true, true
	}
	fmt.Printf("social graph: %d vertices, %d edges\n", len(seen), len(edges))

	// The workload: recommendation-style pattern queries ("real-time
	// applications of graph data … for example, in social networks").
	wl := loom.NewWorkload("social")
	wl.Add("friend-of-friend", loom.Path("person", "person", "person"), 0.55)
	wl.Add("same-event", loom.Path("person", "event", "person"), 0.25)
	wl.Add("same-city", loom.Path("person", "city", "person"), 0.20)

	// Stream in BFS order (the favourable case; try "random" to see the
	// §5.3 sensitivity).
	stream, err := loom.OrderStream(edges, "bfs", 1)
	if err != nil {
		log.Fatal(err)
	}

	opt := loom.Options{
		Partitions:       8,
		ExpectedVertices: len(seen),
		ExpectedEdges:    len(edges),
		WindowSize:       512,
	}

	fmt.Println("\nsystem   ipt        vs hash   edge-cut  imbalance")
	var hashIPT float64
	for _, algo := range []string{"hash", "ldg", "fennel", "loom"} {
		var p *loom.Partitioner
		if algo == "loom" {
			p, err = loom.New(opt, wl)
		} else {
			p, err = loom.NewBaseline(algo, opt, wl)
		}
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range stream {
			p.AddStreamEdge(e)
		}
		p.Flush()
		ev, err := p.Evaluate()
		if err != nil {
			log.Fatal(err)
		}
		if algo == "hash" {
			hashIPT = ev.IPT
		}
		rel := 100.0
		if hashIPT > 0 {
			rel = 100 * ev.IPT / hashIPT
		}
		fmt.Printf("%-8s %-10.1f %5.1f%%    %-9d %.1f%%\n",
			algo, ev.IPT, rel, ev.EdgeCut, 100*ev.Imbalance)
	}
	fmt.Println("\nLower ipt means fewer network hops when answering the workload.")
}
